#include "bbs/fuzz/fuzzer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "bbs/common/assert.hpp"
#include "bbs/common/rng.hpp"
#include "bbs/core/exact_reference.hpp"
#include "bbs/core/verification.hpp"
#include "bbs/io/api_io.hpp"
#include "bbs/sim/tdm_simulator.hpp"

namespace bbs::fuzz {

using linalg::Vector;

namespace {

using model::Configuration;

struct Alloc {
  std::vector<Vector> budgets;
  std::vector<std::vector<Index>> caps;
};

Alloc alloc_of(const Configuration& config, const core::MappingResult& m) {
  Alloc a;
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    const auto& mg = m.graphs[static_cast<std::size_t>(gi)];
    Vector b(mg.tasks.size());
    for (std::size_t t = 0; t < mg.tasks.size(); ++t) {
      b[t] = static_cast<double>(mg.tasks[t].budget);
    }
    std::vector<Index> c(mg.buffers.size());
    for (std::size_t i = 0; i < mg.buffers.size(); ++i) {
      c[i] = mg.buffers[i].capacity;
    }
    a.budgets.push_back(std::move(b));
    a.caps.push_back(std::move(c));
  }
  return a;
}

/// The joint weighted objective evaluated on the rounded allocation —
/// identical formula to mapping_from_solution and exact_reference, so all
/// three are comparable.
double joint_rounded_cost(const Configuration& config,
                          const core::MappingResult& m) {
  double cost = 0.0;
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    const model::TaskGraph& tg = config.task_graph(gi);
    const auto& mg = m.graphs[static_cast<std::size_t>(gi)];
    for (Index t = 0; t < tg.num_tasks(); ++t) {
      cost += tg.task(t).budget_weight *
              static_cast<double>(mg.tasks[static_cast<std::size_t>(t)].budget);
    }
    for (Index b = 0; b < tg.num_buffers(); ++b) {
      const model::Buffer& buf = tg.buffer(b);
      cost += buf.size_weight * static_cast<double>(buf.container_size) *
              static_cast<double>(
                  mg.buffers[static_cast<std::size_t>(b)].capacity -
                  buf.initial_fill);
    }
  }
  return cost;
}

void add_failure(CaseResult& r, std::string msg) {
  r.passed = false;
  r.failures.push_back(std::move(msg));
}

/// Structural + self-consistency checks of one feasible mapping: the
/// verification flag, the reported objectives, grid alignment and capacity
/// bounds. `check_reported_objective` is off for two_phase results, whose
/// staged programs report phase objectives rather than the joint one.
void check_mapping(const Configuration& config, const core::MappingResult& m,
                   bool check_reported_objective, const std::string& what,
                   CaseResult& r) {
  if (!m.feasible()) return;
  if (!m.verified) {
    add_failure(r, what +
                       ": feasible mapping failed the independent "
                       "MCR/platform verification");
    return;
  }
  const double recomputed = joint_rounded_cost(config, m);
  if (check_reported_objective) {
    if (std::abs(recomputed - m.objective_rounded) >
        1e-6 * (1.0 + std::abs(recomputed))) {
      std::ostringstream os;
      os << what << ": reported rounded objective " << m.objective_rounded
         << " disagrees with the allocation's recomputed cost " << recomputed;
      add_failure(r, os.str());
    }
    if (m.objective_rounded <
        m.objective_continuous -
            1e-5 * (1.0 + std::abs(m.objective_continuous))) {
      add_failure(r, what +
                         ": rounded objective is below the continuous "
                         "optimum (rounding must be conservative)");
    }
  }
  const Index g = config.granularity();
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    const model::TaskGraph& tg = config.task_graph(gi);
    const auto& mg = m.graphs[static_cast<std::size_t>(gi)];
    for (Index t = 0; t < tg.num_tasks(); ++t) {
      const Index budget = mg.tasks[static_cast<std::size_t>(t)].budget;
      if (budget <= 0 || budget % g != 0) {
        std::ostringstream os;
        os << what << ": budget " << budget << " of graph " << gi << " task "
           << t << " is off the granularity-" << g << " grid";
        add_failure(r, os.str());
      }
    }
    for (Index b = 0; b < tg.num_buffers(); ++b) {
      const model::Buffer& buf = tg.buffer(b);
      const Index cap = mg.buffers[static_cast<std::size_t>(b)].capacity;
      if (cap < std::max<Index>(1, buf.initial_fill) ||
          (buf.max_capacity != -1 && cap > buf.max_capacity)) {
        std::ostringstream os;
        os << what << ": capacity " << cap << " of graph " << gi << " buffer "
           << b << " violates its bounds";
        add_failure(r, os.str());
      }
    }
  }
}

/// Differential oracle 1: the TDM discrete-event simulator. The dataflow
/// model is conservative for actual execution, so a verified allocation
/// must sustain the required period and stay within the PAS bound.
void check_sim(const Configuration& config, const core::MappingResult& m,
               const CaseSpec& spec, const std::string& what, CaseResult& r) {
  if (!m.feasible() || !m.verified) return;
  const Alloc a = alloc_of(config, m);
  sim::SimOptions so;
  so.iterations = 96;
  so.warmup = 32;
  so.seed = spec.params.seed;
  so.placement = (spec.variant % 2 == 0) ? sim::SlicePlacement::kContiguous
                                         : sim::SlicePlacement::kScattered;
  so.randomise_execution_times = (spec.index % 3 == 0);
  sim::SimResult sim;
  try {
    sim = sim::simulate_tdm(config, a.budgets, a.caps, so);
  } catch (const std::exception& e) {
    add_failure(r, what + ": simulator rejected a verified allocation: " +
                       e.what());
    return;
  }
  r.sim_checked = true;
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    const auto& gr = sim.graphs[static_cast<std::size_t>(gi)];
    const double mu = config.task_graph(gi).required_period();
    std::ostringstream os;
    os << what << ": graph " << gi;
    if (gr.deadlocked) {
      add_failure(r, os.str() + " deadlocked under a verified allocation");
      continue;
    }
    // The PAS bound only pins the long-run rate; a finite measurement
    // window can overshoot mu when the sink ran ahead at the window start
    // and sits on the bound at its end (pronounced at bisection-minimal
    // periods, where the MCR is exactly mu). Allow that head-start,
    // amortised over the window.
    double rho_max = 0.0;
    for (Index p = 0; p < config.num_processors(); ++p) {
      rho_max =
          std::max(rho_max, config.processor(p).replenishment_interval);
    }
    const double window = static_cast<double>(so.iterations - so.warmup);
    const double slack = (rho_max + mu) / window + 1e-6;
    if (gr.measured_period > mu + slack) {
      std::ostringstream msg;
      msg << os.str() << " measured period " << gr.measured_period
          << " exceeds the required period " << mu << " beyond the "
          << "finite-window slack " << slack;
      add_failure(r, msg.str());
    }
    if (!core::simulation_within_pas_bound(
            config, gi, a.budgets[static_cast<std::size_t>(gi)],
            a.caps[static_cast<std::size_t>(gi)], gr)) {
      add_failure(r, os.str() +
                         " execution trace exceeds the PAS "
                         "conservativeness bound");
    }
  }
}

/// Differential oracle 2: the exhaustive integer reference on small
/// instances. Only definite verdicts are used — a truncated search says
/// nothing. The verified allocation lies inside the exact search space
/// (its caps respect the shared ceiling, its budgets the replenishment
/// bounds), so exact-kInfeasible contradicts it, and the exact optimum can
/// never cost more than it does. SOCP-infeasible alongside exact-feasible
/// is NOT flagged: the SOCP constraints are sufficient, not necessary.
void check_exact(const Configuration& config, const core::MappingResult* m,
                 const CaseSpec& spec, const std::string& what,
                 CaseResult& r) {
  if (config.total_tasks() > 4 || config.total_buffers() > 3) return;
  core::ExactSearchLimits lim;
  lim.max_capacity = spec.max_capacity;
  lim.max_combinations = 50000;
  core::ExactOutcome outcome;
  try {
    outcome = core::exact_reference_outcome(config, lim);
  } catch (const std::exception& e) {
    add_failure(r, what + ": exact reference threw: " + e.what());
    return;
  }
  if (outcome.status == core::ExactStatus::kTruncated) return;
  r.exact_checked = true;
  const bool have = m != nullptr && m->feasible() && m->verified;
  if (!have) return;
  if (outcome.status == core::ExactStatus::kInfeasible) {
    add_failure(r, what +
                       ": exhaustive search proves infeasibility, but the "
                       "engine returned a verified feasible mapping");
    return;
  }
  const double rounded = joint_rounded_cost(config, *m);
  if (outcome.solution->cost > rounded + 1e-6 * (1.0 + std::abs(rounded))) {
    std::ostringstream os;
    os << what << ": verified rounded allocation costs " << rounded
       << ", less than the exhaustive integer optimum "
       << outcome.solution->cost;
    add_failure(r, os.str());
  }
}

Index total_tasks_estimate(const CaseSpec& spec) {
  switch (spec.family) {
    case Family::kChain:
    case Family::kRing:
    case Family::kRandomDag:
      return spec.size_a;
    case Family::kSplitJoin:
      return spec.size_a * spec.size_b + 2;
    case Family::kMultiJob:
      return spec.size_a * spec.size_b;
  }
  return spec.size_a;
}

}  // namespace

const char* to_string(Family family) {
  switch (family) {
    case Family::kChain: return "chain";
    case Family::kRing: return "ring";
    case Family::kSplitJoin: return "split_join";
    case Family::kRandomDag: return "random_dag";
    case Family::kMultiJob: return "multi_job";
  }
  return "unknown";
}

const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kSolve: return "solve";
    case RequestKind::kSweep: return "sweep";
    case RequestKind::kMinPeriod: return "min_period";
    case RequestKind::kTwoPhase: return "two_phase";
    case RequestKind::kLatency: return "latency";
  }
  return "unknown";
}

CaseSpec make_case(std::uint64_t seed, std::uint64_t index) {
  CaseSpec spec;
  spec.seed = seed;
  spec.index = index;
  // Disjoint per-case streams: the Rng's SplitMix seeding decorrelates
  // consecutive values, so a simple affine mix of (seed, index) suffices.
  Rng rng(seed + 0x9E3779B97F4A7C15ull * (index + 1));

  spec.family = static_cast<Family>(rng.next_int(0, 4));
  switch (spec.family) {
    case Family::kChain:
      spec.size_a = static_cast<Index>(rng.next_int(2, 6));
      break;
    case Family::kRing:
      spec.size_a = static_cast<Index>(rng.next_int(2, 5));
      break;
    case Family::kSplitJoin:
      spec.size_a = static_cast<Index>(rng.next_int(2, 3));
      spec.size_b = static_cast<Index>(rng.next_int(1, 2));
      break;
    case Family::kRandomDag:
      spec.size_a = static_cast<Index>(rng.next_int(3, 6));
      spec.extra_edge_fraction = rng.next_real(0.2, 1.0);
      break;
    case Family::kMultiJob:
      spec.size_a = static_cast<Index>(rng.next_int(2, 3));
      spec.size_b = static_cast<Index>(rng.next_int(2, 3));
      break;
  }

  gen::GenParams p;
  p.num_processors = static_cast<Index>(rng.next_int(2, 4));
  p.wcet_lo = rng.next_real(0.3, 1.0);
  p.wcet_hi = p.wcet_lo + rng.next_real(0.5, 2.0);
  p.feasible_margin = rng.next_real(1.3, 2.2);
  const double bw[] = {1e-3, 0.05, 1.0};
  p.buffer_weight = bw[rng.next_int(0, 2)];
  p.scheduling_overhead = rng.next_bool(0.3) ? rng.next_real(0.2, 1.0) : 0.0;
  p.seed = rng.next_u64();
  spec.params = p;

  spec.max_capacity = static_cast<Index>(rng.next_int(3, 6));
  const std::int64_t k = rng.next_int(0, 9);
  spec.kind = k <= 3   ? RequestKind::kSolve
              : k <= 5 ? RequestKind::kSweep
              : k == 6 ? RequestKind::kMinPeriod
              : k <= 8 ? RequestKind::kTwoPhase
                       : RequestKind::kLatency;
  spec.variant = static_cast<Index>(rng.next_int(0, 3));

  spec.extreme_wcet = rng.next_bool(0.2);
  const double interval_draw = rng.next_double();
  spec.tiny_interval = interval_draw < 0.12;
  spec.huge_interval = !spec.tiny_interval && interval_draw < 0.24;
  spec.granularity_stress = rng.next_bool(0.2);
  spec.near_infeasible = rng.next_bool(0.2);
  return spec;
}

gen::GenParams effective_params(const CaseSpec& spec) {
  gen::GenParams p = spec.params;
  if (spec.extreme_wcet) {
    p.wcet_lo = 0.02;
    p.wcet_hi = 30.0;
  }
  if (spec.granularity_stress) {
    p.granularity = 3 + static_cast<Index>(spec.index % 5);
  }
  if (spec.near_infeasible) {
    p.feasible_margin =
        1.01 + 0.008 * static_cast<double>(spec.index % 5);
  }
  if (spec.huge_interval) p.replenishment_interval = 2e4;
  // Over-subscription floor: the generators assert a positive fair budget
  // share (rho - o - g*n)/n per processor. With rho >= o + 2*g*n + g the
  // share is at least g*(n+1)/n > 0, so the adversarial "tiny interval"
  // mutation sits exactly on this floor instead of crashing the generator.
  const Index total = total_tasks_estimate(spec);
  const double max_load = std::ceil(static_cast<double>(total) /
                                    static_cast<double>(p.num_processors));
  const double g = static_cast<double>(p.granularity);
  const double floor_rho = p.scheduling_overhead + 2.0 * g * max_load + g;
  if (spec.tiny_interval) {
    p.replenishment_interval = floor_rho;
  } else {
    p.replenishment_interval = std::max(p.replenishment_interval, floor_rho);
  }
  return p;
}

model::Configuration build_configuration(const CaseSpec& spec) {
  const gen::GenParams p = effective_params(spec);
  model::Configuration config = [&] {
    switch (spec.family) {
      case Family::kChain:
        return gen::make_chain(std::max<Index>(1, spec.size_a), p);
      case Family::kRing:
        return gen::make_ring(std::max<Index>(2, spec.size_a), p);
      case Family::kSplitJoin:
        return gen::make_split_join(std::max<Index>(1, spec.size_a),
                                    std::max<Index>(1, spec.size_b), p);
      case Family::kRandomDag:
        return gen::make_random_dag(std::max<Index>(2, spec.size_a),
                                    spec.extra_edge_fraction, p);
      case Family::kMultiJob:
        return gen::make_multi_job(std::max<Index>(1, spec.size_a),
                                   std::max<Index>(1, spec.size_b), p);
    }
    return gen::make_chain(2, p);
  }();
  // A uniform finite capacity ceiling on every buffer: it matches the
  // SOCP's search space to the exact oracle's and stresses the capacity
  // coupling (back-pressure) everywhere.
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    model::TaskGraph& tg = config.mutable_task_graph(gi);
    for (Index b = 0; b < tg.num_buffers(); ++b) {
      const Index fill = tg.buffer(b).initial_fill;
      tg.set_max_capacity(
          b, std::max<Index>(spec.max_capacity, std::max<Index>(1, fill)));
    }
  }
  return config;
}

api::Request build_request(const CaseSpec& spec) {
  api::Request request;
  std::ostringstream id;
  id << "fuzz-" << spec.seed << "-" << spec.index;
  request.id = id.str();
  request.options.verify = true;
  model::Configuration config = build_configuration(spec);
  switch (spec.kind) {
    case RequestKind::kSolve:
      request.payload = api::SolveRequest{std::move(config)};
      break;
    case RequestKind::kSweep: {
      api::SweepRequest sweep;
      sweep.graph = 0;
      sweep.cap_lo = 2;
      sweep.cap_hi = spec.max_capacity + 1;
      sweep.configuration = std::move(config);
      request.payload = std::move(sweep);
      break;
    }
    case RequestKind::kMinPeriod: {
      api::MinPeriodRequest mp;
      mp.graph = 0;
      mp.period_hi = config.task_graph(0).required_period();
      mp.rel_tol = 1e-3;
      mp.flow = (spec.variant % 2 == 0) ? api::MinPeriodRequest::Flow::kJoint
                                        : api::MinPeriodRequest::Flow::kBudgetFirst;
      mp.configuration = std::move(config);
      request.payload = std::move(mp);
      break;
    }
    case RequestKind::kTwoPhase: {
      api::TwoPhaseRequest tp;
      tp.mode = (spec.variant % 2 == 0)
                    ? api::TwoPhaseRequest::Mode::kBudgetFirst
                    : api::TwoPhaseRequest::Mode::kBufferFirst;
      tp.cap_lo = spec.max_capacity;
      tp.cap_hi = -1;
      tp.configuration = std::move(config);
      request.payload = std::move(tp);
      break;
    }
    case RequestKind::kLatency: {
      api::LatencyRequest lat;
      lat.graph = -1;
      lat.configuration = std::move(config);
      request.payload = std::move(lat);
      break;
    }
  }
  return request;
}

std::string case_label(const CaseSpec& spec) {
  std::ostringstream os;
  os << "seed=" << spec.seed << " index=" << spec.index << " "
     << to_string(spec.family) << "/" << spec.size_a;
  if (spec.family == Family::kSplitJoin || spec.family == Family::kMultiJob) {
    os << "x" << spec.size_b;
  }
  os << " kind=" << to_string(spec.kind)
     << " procs=" << spec.params.num_processors << " cap=" << spec.max_capacity;
  std::string flags;
  if (spec.extreme_wcet) flags += "wcet!,";
  if (spec.tiny_interval) flags += "rho-,";
  if (spec.huge_interval) flags += "rho+,";
  if (spec.granularity_stress) flags += "g!,";
  if (spec.near_infeasible) flags += "margin~,";
  if (!flags.empty()) {
    flags.pop_back();
    os << " [" << flags << "]";
  }
  return os.str();
}

CaseResult run_request_checks(api::Engine& engine, const CaseSpec& spec,
                              const api::Request& request,
                              const FuzzOptions& options) {
  CaseResult r;
  r.spec = spec;

  api::Response resp;
  try {
    resp = engine.run(request);
  } catch (const std::exception& e) {
    add_failure(r, std::string("engine.run threw (it must return error "
                               "responses instead): ") +
                       e.what());
    return r;
  }
  r.recovered_solves = resp.diagnostics.recovered_solves;

  if (resp.status == api::ResponseStatus::kError) {
    if (resp.error_code == api::ErrorCode::kNumericalFailure) {
      // A structured numerical failure is the designed answer for
      // instances the IPM (and its recovery ladder) cannot crack — it is
      // counted, not flagged.
      r.numerical_failure = true;
    } else {
      r.engine_error = true;
      add_failure(r, std::string("error response (") +
                         api::to_string(resp.error_code) + "): " + resp.error);
    }
    return r;
  }
  if (resp.status == api::ResponseStatus::kInfeasible) {
    r.infeasible = true;
    return r;
  }

  const Configuration& config = request.configuration();
  switch (spec.kind) {
    case RequestKind::kSolve: {
      core::MappingResult m = std::get<api::SolvePayload>(resp.payload).mapping;
      if (options.inject_known_bad && m.feasible()) {
        m.objective_rounded -= 1.0;
      }
      check_mapping(config, m, /*check_reported_objective=*/true, "solve", r);
      if (options.run_sim_oracle) check_sim(config, m, spec, "solve", r);
      if (options.run_exact_oracle) check_exact(config, &m, spec, "solve", r);
      break;
    }
    case RequestKind::kSweep: {
      const core::TradeoffSweep& sweep =
          std::get<api::SweepPayload>(resp.payload).sweep;
      for (const core::TradeoffPoint& pt : sweep.points) {
        if (!pt.feasible) continue;
        std::ostringstream what;
        what << "sweep point cap=" << pt.max_capacity;
        for (const Index cap : pt.capacities) {
          if (cap > pt.max_capacity) {
            add_failure(r, what.str() + ": chosen capacity exceeds the bound");
            break;
          }
        }
        Vector budgets(pt.budgets.size());
        for (std::size_t i = 0; i < pt.budgets.size(); ++i) {
          budgets[i] = static_cast<double>(pt.budgets[i]);
        }
        const core::GraphVerification v =
            core::verify_graph(config, 0, budgets, pt.capacities);
        if (!v.throughput_met) {
          add_failure(r, what.str() +
                             ": rounded point fails the independent MCR "
                             "check");
        }
      }
      // Self-consistency: the point at the configured capacity bound and a
      // plain solve answer the same SOCP. Skipped for near-infeasible
      // margins, where the two code paths may legitimately land on
      // opposite sides of the feasibility tolerance.
      if (!spec.near_infeasible) {
        const core::TradeoffPoint* at_cap = nullptr;
        for (const core::TradeoffPoint& pt : sweep.points) {
          if (pt.max_capacity == spec.max_capacity) at_cap = &pt;
        }
        if (at_cap != nullptr) {
          api::Request solve_req;
          solve_req.id = request.id + "-xcheck";
          solve_req.options = request.options;
          solve_req.payload = api::SolveRequest{config};
          const api::Response solved = engine.run(solve_req);
          const bool solve_feasible =
              solved.status == api::ResponseStatus::kOk;
          if (at_cap->feasible != solve_feasible) {
            add_failure(r,
                        "sweep and solve disagree on feasibility at the "
                        "same capacity bound");
          } else if (at_cap->feasible && solve_feasible) {
            const core::MappingResult& m =
                std::get<api::SolvePayload>(solved.payload).mapping;
            double solve_total = 0.0;
            for (const core::TaskAllocation& t : m.graphs.front().tasks) {
              solve_total += t.budget_continuous;
            }
            if (std::abs(solve_total - at_cap->total_budget_continuous) >
                1e-3 * (1.0 + std::abs(solve_total))) {
              std::ostringstream os;
              os << "sweep total budget " << at_cap->total_budget_continuous
                 << " disagrees with the plain solve's " << solve_total
                 << " at the same capacity bound";
              add_failure(r, os.str());
            }
          }
        }
      }
      break;
    }
    case RequestKind::kMinPeriod: {
      const api::MinPeriodPayload& mp =
          std::get<api::MinPeriodPayload>(resp.payload);
      if (!mp.found) {
        r.infeasible = true;
        break;
      }
      const auto& req_payload = std::get<api::MinPeriodRequest>(request.payload);
      if (mp.period > req_payload.period_hi * (1.0 + 1e-9)) {
        add_failure(r, "min_period returned a period above its search bound");
        break;
      }
      // Re-anchor the configuration at the found period so every oracle
      // judges the mapping against the throughput it was solved for.
      Configuration tight = config;
      tight.mutable_task_graph(req_payload.graph)
          .set_required_period(mp.period);
      check_mapping(tight, mp.mapping, /*check_reported_objective=*/true,
                    "min_period", r);
      if (options.run_sim_oracle) {
        check_sim(tight, mp.mapping, spec, "min_period", r);
      }
      if (options.run_exact_oracle) {
        check_exact(tight, &mp.mapping, spec, "min_period", r);
      }
      break;
    }
    case RequestKind::kTwoPhase: {
      const api::TwoPhasePayload& tp =
          std::get<api::TwoPhasePayload>(resp.payload);
      bool deep_checked = false;
      for (std::size_t i = 0; i < tp.mappings.size(); ++i) {
        const core::MappingResult& m = tp.mappings[i];
        if (!m.feasible()) continue;
        std::ostringstream what;
        what << "two_phase[" << i << "]";
        check_mapping(config, m, /*check_reported_objective=*/false,
                      what.str(), r);
        if (!deep_checked) {
          // The sim and exact oracles are the expensive ones; one staged
          // mapping per case is enough signal.
          if (options.run_sim_oracle) check_sim(config, m, spec, what.str(), r);
          if (options.run_exact_oracle) {
            check_exact(config, &m, spec, what.str(), r);
          }
          deep_checked = true;
        }
      }
      break;
    }
    case RequestKind::kLatency: {
      const api::LatencyPayload& lp =
          std::get<api::LatencyPayload>(resp.payload);
      check_mapping(config, lp.mapping, /*check_reported_objective=*/true,
                    "latency", r);
      if (options.run_sim_oracle) check_sim(config, lp.mapping, spec,
                                            "latency", r);
      if (options.run_exact_oracle) {
        check_exact(config, &lp.mapping, spec, "latency", r);
      }
      if (lp.mapping.feasible() && lp.mapping.verified) {
        for (const api::LatencyPayload::GraphBound& gb : lp.graphs) {
          std::ostringstream what;
          what << "latency graph " << gb.graph;
          if (!gb.has_pas) {
            // A verified mapping sustains mu, so a PAS at mu exists — the
            // latency bound may never be "missing" for it.
            add_failure(r, what.str() +
                               ": verified mapping reported as admitting "
                               "no PAS");
            continue;
          }
          double worst = 0.0;
          bool pair_ok = true;
          for (const core::LatencyBound& lb : gb.latency.pairs) {
            if (!std::isfinite(lb.latency) || lb.latency < 0.0) {
              add_failure(r, what.str() + ": non-finite or negative bound");
              pair_ok = false;
              break;
            }
            worst = std::max(worst, lb.latency);
          }
          if (pair_ok &&
              std::abs(worst - gb.latency.worst) > 1e-9 * (1.0 + worst)) {
            add_failure(r, what.str() +
                               ": worst-case latency disagrees with the "
                               "maximum over pairs");
          }
        }
      }
      break;
    }
  }
  return r;
}

CaseResult run_case(api::Engine& engine, const CaseSpec& spec,
                    const FuzzOptions& options) {
  api::Request request = build_request(spec);
  if (options.inject_fail_first) {
    request.options.ipm.fail_at_iteration = 0;
    request.options.ipm.fail_only_first_attempt = true;
  }
  return run_request_checks(engine, spec, request, options);
}

CaseSpec shrink_case(api::Engine& engine, const CaseSpec& failing,
                     const FuzzOptions& options) {
  const auto still_fails = [&](const CaseSpec& candidate) {
    try {
      return !run_case(engine, candidate, options).passed;
    } catch (const std::exception&) {
      // A candidate that crashes the pipeline outright is at least as
      // interesting as the original failure.
      return true;
    }
  };

  const Index min_a = failing.family == Family::kRing       ? 2
                      : failing.family == Family::kRandomDag ? 2
                      : failing.family == Family::kChain     ? 1
                                                             : 1;
  CaseSpec best = failing;
  int budget = options.max_shrink_runs;
  bool progress = true;
  while (progress && budget > 0) {
    progress = false;
    std::vector<CaseSpec> candidates;
    if (best.size_a > min_a) {
      CaseSpec c = best;
      --c.size_a;
      candidates.push_back(c);
    }
    if (best.size_b > 1) {
      CaseSpec c = best;
      --c.size_b;
      candidates.push_back(c);
    }
    if (best.params.num_processors > 2) {
      CaseSpec c = best;
      --c.params.num_processors;
      candidates.push_back(c);
    }
    if (best.family == Family::kRandomDag && best.extra_edge_fraction > 0.0) {
      CaseSpec c = best;
      c.extra_edge_fraction = 0.0;
      candidates.push_back(c);
    }
    if (best.max_capacity > 2) {
      CaseSpec c = best;
      --c.max_capacity;
      candidates.push_back(c);
    }
    const auto clear_flag = [&](bool CaseSpec::*flag) {
      if (best.*flag) {
        CaseSpec c = best;
        c.*flag = false;
        candidates.push_back(c);
      }
    };
    clear_flag(&CaseSpec::extreme_wcet);
    clear_flag(&CaseSpec::tiny_interval);
    clear_flag(&CaseSpec::huge_interval);
    clear_flag(&CaseSpec::granularity_stress);
    clear_flag(&CaseSpec::near_infeasible);

    for (const CaseSpec& candidate : candidates) {
      if (budget <= 0) break;
      --budget;
      if (still_fails(candidate)) {
        best = candidate;
        progress = true;
        break;
      }
    }
  }
  return best;
}

FuzzSummary run_fuzz(const FuzzOptions& options) {
  FuzzSummary summary;
  api::Engine engine;
  for (std::uint64_t i = 0; i < options.cases; ++i) {
    const CaseSpec spec = make_case(options.seed, i);
    CaseResult result;
    try {
      result = run_case(engine, spec, options);
    } catch (const std::exception& e) {
      result.spec = spec;
      result.passed = false;
      result.failures = {std::string("unhandled exception: ") + e.what()};
    }
    ++summary.cases;
    if (result.numerical_failure) ++summary.numerical_failures;
    if (result.infeasible) ++summary.infeasible;
    if (result.exact_checked) ++summary.exact_checked;
    if (result.sim_checked) ++summary.sim_checked;
    if (options.verbosity >= 2) {
      std::fprintf(stderr, "[fuzz] %s: %s\n", case_label(spec).c_str(),
                   result.passed ? "ok" : "FAIL");
    }
    if (result.passed) {
      ++summary.passed;
      continue;
    }
    ++summary.failed;
    CaseSpec shrunk = spec;
    CaseResult shrunk_result = result;
    if (options.shrink) {
      shrunk = shrink_case(engine, spec, options);
      try {
        CaseResult rerun = run_case(engine, shrunk, options);
        if (!rerun.passed) shrunk_result = rerun;
      } catch (const std::exception&) {
        // Keep the original failure record.
      }
    }
    const std::string line =
        case_label(shrunk) + ": " +
        (shrunk_result.failures.empty() ? "unknown failure"
                                        : shrunk_result.failures.front());
    summary.failure_lines.push_back(line);
    if (options.verbosity >= 1) {
      std::fprintf(stderr, "[fuzz] FAIL %s\n", line.c_str());
    }
    if (!options.corpus_dir.empty()) {
      try {
        summary.reproducers.push_back(
            write_reproducer(shrunk, shrunk_result, options.corpus_dir));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[fuzz] could not write reproducer: %s\n",
                     e.what());
      }
    }
  }
  summary.recovered_solves = engine.stats().recovered_solves;
  return summary;
}

io::JsonValue case_spec_to_json_value(const CaseSpec& spec) {
  io::JsonObject doc;
  doc["seed"] = io::JsonValue(static_cast<double>(spec.seed));
  doc["index"] = io::JsonValue(static_cast<double>(spec.index));
  doc["family"] = io::JsonValue(to_string(spec.family));
  doc["size_a"] = io::JsonValue(static_cast<double>(spec.size_a));
  doc["size_b"] = io::JsonValue(static_cast<double>(spec.size_b));
  doc["extra_edge_fraction"] = io::JsonValue(spec.extra_edge_fraction);
  doc["max_capacity"] = io::JsonValue(static_cast<double>(spec.max_capacity));
  doc["kind"] = io::JsonValue(to_string(spec.kind));
  doc["variant"] = io::JsonValue(static_cast<double>(spec.variant));
  io::JsonObject params;
  params["num_processors"] =
      io::JsonValue(static_cast<double>(spec.params.num_processors));
  params["replenishment_interval"] =
      io::JsonValue(spec.params.replenishment_interval);
  params["scheduling_overhead"] =
      io::JsonValue(spec.params.scheduling_overhead);
  params["wcet_lo"] = io::JsonValue(spec.params.wcet_lo);
  params["wcet_hi"] = io::JsonValue(spec.params.wcet_hi);
  params["feasible_margin"] = io::JsonValue(spec.params.feasible_margin);
  params["buffer_weight"] = io::JsonValue(spec.params.buffer_weight);
  params["granularity"] =
      io::JsonValue(static_cast<double>(spec.params.granularity));
  // 64-bit seeds do not survive the double-typed JSON number model; a
  // decimal string round-trips exactly.
  params["gen_seed"] = io::JsonValue(std::to_string(spec.params.seed));
  doc["params"] = io::JsonValue(std::move(params));
  io::JsonObject mutations;
  mutations["extreme_wcet"] = io::JsonValue(spec.extreme_wcet);
  mutations["tiny_interval"] = io::JsonValue(spec.tiny_interval);
  mutations["huge_interval"] = io::JsonValue(spec.huge_interval);
  mutations["granularity_stress"] = io::JsonValue(spec.granularity_stress);
  mutations["near_infeasible"] = io::JsonValue(spec.near_infeasible);
  doc["mutations"] = io::JsonValue(std::move(mutations));
  return io::JsonValue(std::move(doc));
}

CaseSpec case_spec_from_json_value(const io::JsonValue& doc) {
  const io::JsonObject& obj = doc.as_object();
  CaseSpec spec;
  spec.seed = static_cast<std::uint64_t>(obj.at("seed").as_number());
  spec.index = static_cast<std::uint64_t>(obj.at("index").as_number());
  const std::string& family = obj.at("family").as_string();
  if (family == "chain") spec.family = Family::kChain;
  else if (family == "ring") spec.family = Family::kRing;
  else if (family == "split_join") spec.family = Family::kSplitJoin;
  else if (family == "random_dag") spec.family = Family::kRandomDag;
  else if (family == "multi_job") spec.family = Family::kMultiJob;
  else throw ModelError("fuzz reproducer: unknown family '" + family + "'");
  spec.size_a = static_cast<Index>(obj.at("size_a").as_number());
  spec.size_b = static_cast<Index>(obj.at("size_b").as_number());
  spec.extra_edge_fraction = obj.at("extra_edge_fraction").as_number();
  spec.max_capacity = static_cast<Index>(obj.at("max_capacity").as_number());
  const std::string& kind = obj.at("kind").as_string();
  if (kind == "solve") spec.kind = RequestKind::kSolve;
  else if (kind == "sweep") spec.kind = RequestKind::kSweep;
  else if (kind == "min_period") spec.kind = RequestKind::kMinPeriod;
  else if (kind == "two_phase") spec.kind = RequestKind::kTwoPhase;
  else if (kind == "latency") spec.kind = RequestKind::kLatency;
  else throw ModelError("fuzz reproducer: unknown kind '" + kind + "'");
  spec.variant = static_cast<Index>(obj.at("variant").as_number());
  const io::JsonObject& params = obj.at("params").as_object();
  spec.params.num_processors =
      static_cast<Index>(params.at("num_processors").as_number());
  spec.params.replenishment_interval =
      params.at("replenishment_interval").as_number();
  spec.params.scheduling_overhead =
      params.at("scheduling_overhead").as_number();
  spec.params.wcet_lo = params.at("wcet_lo").as_number();
  spec.params.wcet_hi = params.at("wcet_hi").as_number();
  spec.params.feasible_margin = params.at("feasible_margin").as_number();
  spec.params.buffer_weight = params.at("buffer_weight").as_number();
  spec.params.granularity =
      static_cast<Index>(params.at("granularity").as_number());
  spec.params.seed = std::stoull(params.at("gen_seed").as_string());
  const io::JsonObject& mutations = obj.at("mutations").as_object();
  spec.extreme_wcet = mutations.at("extreme_wcet").as_bool();
  spec.tiny_interval = mutations.at("tiny_interval").as_bool();
  spec.huge_interval = mutations.at("huge_interval").as_bool();
  spec.granularity_stress = mutations.at("granularity_stress").as_bool();
  spec.near_infeasible = mutations.at("near_infeasible").as_bool();
  return spec;
}

std::string write_reproducer(const CaseSpec& spec, const CaseResult& result,
                             const std::string& corpus_dir) {
  std::filesystem::create_directories(corpus_dir);
  std::ostringstream name;
  name << "fuzz-" << spec.seed << "-" << spec.index << ".json";
  const std::filesystem::path path =
      std::filesystem::path(corpus_dir) / name.str();

  io::JsonObject doc;
  doc["schema_version"] = io::JsonValue(1);
  doc["tool"] = io::JsonValue("bbs_fuzz");
  doc["label"] = io::JsonValue(case_label(spec));
  doc["case"] = case_spec_to_json_value(spec);
  // The stored request is the replay's source of truth: it stays
  // meaningful even if the generators drift in a later version.
  doc["request"] = io::request_to_json_value(build_request(spec));
  io::JsonArray failures;
  for (const std::string& f : result.failures) {
    failures.push_back(io::JsonValue(f));
  }
  doc["failures"] = io::JsonValue(std::move(failures));
  doc["replay"] =
      io::JsonValue("bbs_fuzz --replay " + path.string());

  std::ofstream out(path);
  if (!out) {
    throw ModelError("fuzz: cannot write reproducer " + path.string());
  }
  out << io::write_json(io::JsonValue(std::move(doc)));
  return path.string();
}

CaseResult replay_file(const std::string& path, const FuzzOptions& options) {
  std::ifstream in(path);
  if (!in) throw ModelError("fuzz: cannot open reproducer " + path);
  std::ostringstream text;
  text << in.rdbuf();
  const io::JsonValue doc = io::parse_json(text.str());
  const io::JsonObject& obj = doc.as_object();
  const CaseSpec spec = case_spec_from_json_value(obj.at("case"));
  const api::Request request = io::request_from_json_value(obj.at("request"));
  api::Engine engine;
  return run_request_checks(engine, spec, request, options);
}

}  // namespace bbs::fuzz
