#include "bbs/linalg/dense_cholesky.hpp"

#include <cmath>

#include "bbs/common/assert.hpp"

namespace bbs::linalg {

DenseLdlt::DenseLdlt(const DenseMatrix& a, double min_pivot)
    : n_(a.rows()), l_(a.rows(), a.rows()), d_(a.rows(), 0.0) {
  BBS_REQUIRE(a.rows() == a.cols(), "DenseLdlt: matrix must be square");
  // Right-looking LDL^T; only the lower triangle of `a` is referenced.
  for (std::size_t j = 0; j < n_; ++j) {
    double dj = a(j, j);
    for (std::size_t k = 0; k < j; ++k) dj -= l_(j, k) * l_(j, k) * d_[k];
    if (std::abs(dj) < min_pivot) {
      throw NumericalError("DenseLdlt: pivot " + std::to_string(j) +
                           " below minimum magnitude");
    }
    d_[j] = dj;
    l_(j, j) = 1.0;
    for (std::size_t i = j + 1; i < n_; ++i) {
      double lij = a(i, j);
      for (std::size_t k = 0; k < j; ++k) lij -= l_(i, k) * l_(j, k) * d_[k];
      l_(i, j) = lij / dj;
    }
  }
}

void DenseLdlt::solve(Vector& b) const {
  BBS_REQUIRE(b.size() == n_, "DenseLdlt::solve: size mismatch");
  // Forward substitution with unit lower triangle.
  for (std::size_t i = 0; i < n_; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * b[k];
    b[i] = s;
  }
  // Diagonal.
  for (std::size_t i = 0; i < n_; ++i) b[i] /= d_[i];
  // Backward substitution with L'.
  for (std::size_t ii = n_; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double s = b[i];
    for (std::size_t k = i + 1; k < n_; ++k) s -= l_(k, i) * b[k];
    b[i] = s;
  }
}

int DenseLdlt::sign_of_determinant() const {
  int sign = 1;
  for (double d : d_) sign *= (d < 0.0) ? -1 : 1;
  return sign;
}

Vector solve_spd(const DenseMatrix& a, const Vector& b) {
  DenseLdlt f(a);
  Vector x = b;
  f.solve(x);
  return x;
}

}  // namespace bbs::linalg
