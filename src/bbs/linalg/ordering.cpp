#include "bbs/linalg/ordering.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "bbs/common/assert.hpp"

namespace bbs::linalg {

namespace {

/// Symmetrised adjacency (no self loops), sorted and deduplicated.
std::vector<std::vector<Index>> build_adjacency(const SparseMatrix& a) {
  BBS_REQUIRE(a.rows() == a.cols(), "ordering: matrix must be square");
  const auto n = static_cast<std::size_t>(a.rows());
  std::vector<std::vector<Index>> adj(n);
  for (Index c = 0; c < a.cols(); ++c) {
    for (Index k = a.col_ptr()[c]; k < a.col_ptr()[c + 1]; ++k) {
      const Index r = a.row_ind()[k];
      if (r == c) continue;
      adj[static_cast<std::size_t>(c)].push_back(r);
      adj[static_cast<std::size_t>(r)].push_back(c);
    }
  }
  for (auto& nbrs : adj) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  return adj;
}

/// BFS levelisation from `start`; returns (last node visited, #levels).
/// Used to locate a pseudo-peripheral node for RCM.
std::pair<Index, int> bfs_depth(const std::vector<std::vector<Index>>& adj,
                                Index start, std::vector<int>& level) {
  std::fill(level.begin(), level.end(), -1);
  std::queue<Index> q;
  q.push(start);
  level[static_cast<std::size_t>(start)] = 0;
  Index last = start;
  int depth = 0;
  while (!q.empty()) {
    const Index u = q.front();
    q.pop();
    last = u;
    depth = level[static_cast<std::size_t>(u)];
    for (Index v : adj[static_cast<std::size_t>(u)]) {
      if (level[static_cast<std::size_t>(v)] < 0) {
        level[static_cast<std::size_t>(v)] = depth + 1;
        q.push(v);
      }
    }
  }
  return {last, depth};
}

std::vector<Index> rcm_ordering(const std::vector<std::vector<Index>>& adj) {
  const std::size_t n = adj.size();
  std::vector<Index> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  std::vector<int> level(n, -1);

  for (std::size_t root_scan = 0; root_scan < n; ++root_scan) {
    if (visited[root_scan]) continue;
    // Pseudo-peripheral start: two BFS sweeps from the component seed.
    Index start = static_cast<Index>(root_scan);
    auto [far1, d1] = bfs_depth(adj, start, level);
    auto [far2, d2] = bfs_depth(adj, far1, level);
    (void)d1;
    (void)d2;
    start = far1;
    (void)far2;

    // Cuthill–McKee BFS, neighbours in increasing-degree order.
    std::queue<Index> q;
    q.push(start);
    visited[static_cast<std::size_t>(start)] = true;
    std::vector<Index> nbrs;
    while (!q.empty()) {
      const Index u = q.front();
      q.pop();
      order.push_back(u);
      nbrs.clear();
      for (Index v : adj[static_cast<std::size_t>(u)]) {
        if (!visited[static_cast<std::size_t>(v)]) {
          visited[static_cast<std::size_t>(v)] = true;
          nbrs.push_back(v);
        }
      }
      std::sort(nbrs.begin(), nbrs.end(), [&adj](Index a, Index b) {
        return adj[static_cast<std::size_t>(a)].size() <
               adj[static_cast<std::size_t>(b)].size();
      });
      for (Index v : nbrs) q.push(v);
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<Index> min_degree_ordering(std::vector<std::vector<Index>> adj) {
  const std::size_t n = adj.size();
  std::vector<Index> order;
  order.reserve(n);
  std::vector<bool> eliminated(n, false);
  // (degree, node) priority queue with lazy invalidation.
  using Entry = std::pair<std::size_t, Index>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  for (std::size_t i = 0; i < n; ++i)
    pq.emplace(adj[i].size(), static_cast<Index>(i));

  std::vector<Index> merged;
  while (!pq.empty()) {
    const auto [deg, u] = pq.top();
    pq.pop();
    const auto ui = static_cast<std::size_t>(u);
    if (eliminated[ui] || adj[ui].size() != deg) continue;  // stale entry
    eliminated[ui] = true;
    order.push_back(u);

    // Eliminate u: connect all remaining neighbours into a clique.
    std::vector<Index> live;
    for (Index v : adj[ui]) {
      if (!eliminated[static_cast<std::size_t>(v)]) live.push_back(v);
    }
    for (Index v : live) {
      auto& nv = adj[static_cast<std::size_t>(v)];
      // nv := (nv ∪ live) \ {u, v}, keeping only non-eliminated nodes.
      merged.clear();
      merged.reserve(nv.size() + live.size());
      for (Index w : nv) {
        if (w != u && !eliminated[static_cast<std::size_t>(w)])
          merged.push_back(w);
      }
      for (Index w : live) {
        if (w != v) merged.push_back(w);
      }
      std::sort(merged.begin(), merged.end());
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      nv = merged;
      pq.emplace(nv.size(), v);
    }
    adj[ui].clear();
    adj[ui].shrink_to_fit();
  }
  return order;
}

}  // namespace

std::vector<Index> compute_ordering(const SparseMatrix& pattern,
                                    OrderingMethod method) {
  const auto n = static_cast<std::size_t>(pattern.rows());
  switch (method) {
    case OrderingMethod::kNatural: {
      std::vector<Index> p(n);
      for (std::size_t i = 0; i < n; ++i) p[i] = static_cast<Index>(i);
      return p;
    }
    case OrderingMethod::kReverseCuthillMcKee:
      return rcm_ordering(build_adjacency(pattern));
    case OrderingMethod::kMinimumDegree:
      return min_degree_ordering(build_adjacency(pattern));
  }
  throw ContractViolation("compute_ordering: unknown method");
}

bool is_permutation(const std::vector<Index>& p) {
  std::vector<bool> seen(p.size(), false);
  for (Index v : p) {
    if (v < 0 || static_cast<std::size_t>(v) >= p.size()) return false;
    if (seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

const char* ordering_name(OrderingMethod method) {
  switch (method) {
    case OrderingMethod::kNatural:
      return "natural";
    case OrderingMethod::kReverseCuthillMcKee:
      return "rcm";
    case OrderingMethod::kMinimumDegree:
      return "min-degree";
  }
  return "?";
}

}  // namespace bbs::linalg
