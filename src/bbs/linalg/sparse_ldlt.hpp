// Sparse LDL^T factorisation of symmetric matrices, in the style of the
// classic up-looking algorithm (elimination tree + column counts + sparse
// triangular solves). This is the workhorse behind the interior-point
// solver's normal-equation solves.
//
// The input matrix must store the *full* symmetric pattern (both triangles);
// the factorisation reads the upper triangle after applying a fill-reducing
// permutation.
#pragma once

#include <vector>

#include "bbs/linalg/ordering.hpp"
#include "bbs/linalg/sparse_matrix.hpp"

namespace bbs::linalg {

class SparseLdlt {
 public:
  struct Options {
    OrderingMethod ordering = OrderingMethod::kMinimumDegree;
    /// Pivots smaller in magnitude than this throw NumericalError.
    double min_pivot = 1e-14;
    /// If false, a negative pivot throws (use for matrices that must be SPD).
    bool allow_indefinite = true;
    /// When non-null, this permutation (perm[new] = old) is used instead of
    /// computing one — callers that factorise a fixed sparsity pattern
    /// repeatedly (the interior-point method) compute the ordering once and
    /// reuse it. The pointee must outlive the constructor call only.
    const std::vector<Index>* fixed_permutation = nullptr;
  };

  /// Factorises the symmetric matrix `a` (full pattern stored).
  explicit SparseLdlt(const SparseMatrix& a);
  SparseLdlt(const SparseMatrix& a, const Options& options);

  /// Solves A x = b in place (applies the internal permutation).
  void solve(Vector& b) const;

  /// Solves with `refine_steps` rounds of iterative refinement against the
  /// original matrix, which must be the matrix passed to the constructor.
  Vector solve_refined(const SparseMatrix& a, const Vector& b,
                       int refine_steps = 2) const;

  /// Number of nonzeros in the factor L (excluding the unit diagonal).
  Index factor_nnz() const { return static_cast<Index>(li_.size()); }

  Index dim() const { return n_; }

  /// Number of negative pivots (inertia check for quasi-definite systems).
  int negative_pivots() const;

  const std::vector<Index>& permutation() const { return perm_; }

 private:
  void symbolic(const SparseMatrix& upper);
  void numeric(const SparseMatrix& upper, const Options& options);

  Index n_ = 0;
  std::vector<Index> perm_;     // perm_[new] = old
  std::vector<Index> inv_perm_; // inv_perm_[old] = new
  std::vector<Index> parent_;   // elimination tree
  std::vector<Index> lp_;       // column pointers of L
  std::vector<Index> li_;       // row indices of L
  std::vector<double> lx_;      // values of L
  std::vector<double> d_;       // diagonal D
};

}  // namespace bbs::linalg
