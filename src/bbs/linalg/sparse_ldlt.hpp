// Sparse LDL^T factorisation of symmetric matrices, in the style of the
// classic up-looking algorithm (elimination tree + column counts + sparse
// triangular solves). This is the workhorse behind the interior-point
// solver's normal-equation solves.
//
// The factorisation is split into a symbolic phase (fill-reducing
// permutation, elimination tree, column counts, workspaces) that runs once
// in the constructor, and a numeric phase that can be re-run against new
// values on the same sparsity pattern via refactor() with zero allocation —
// the structure the interior-point method exploits, since its KKT pattern is
// iteration-invariant.
//
// The input matrix must store the *full* symmetric pattern (both triangles);
// the factorisation reads the upper triangle after applying a fill-reducing
// permutation.
//
// Not reentrant: the solve methods are logically const but share internal
// workspaces, so a SparseLdlt instance must not be used from multiple
// threads concurrently (distinct instances are independent).
#pragma once

#include <vector>

#include "bbs/linalg/ordering.hpp"
#include "bbs/linalg/sparse_matrix.hpp"

namespace bbs::linalg {

class SparseLdlt {
 public:
  struct Options {
    OrderingMethod ordering = OrderingMethod::kMinimumDegree;
    /// Pivots smaller in magnitude than this throw NumericalError.
    double min_pivot = 1e-14;
    /// If false, a negative pivot throws (use for matrices that must be SPD).
    bool allow_indefinite = true;
    /// When non-null, this permutation (perm[new] = old) is used instead of
    /// computing one — callers that factorise a fixed sparsity pattern
    /// repeatedly (the interior-point method) compute the ordering once and
    /// reuse it. The pointee must outlive the constructor call only.
    const std::vector<Index>* fixed_permutation = nullptr;
  };

  /// Factorises the symmetric matrix `a` (full pattern stored).
  explicit SparseLdlt(const SparseMatrix& a);
  SparseLdlt(const SparseMatrix& a, const Options& options);

  /// Numeric-only re-factorisation: reuses the stored permutation,
  /// elimination tree, column pointers, and workspaces with no allocation.
  /// `a` must have exactly the sparsity pattern of the constructor argument
  /// (values are free to change); a pattern change throws ContractViolation.
  /// A NumericalError thrown mid-pass leaves the factor invalid: solve()
  /// then throws until a later refactor() completes (the previous factor is
  /// overwritten in place, not preserved).
  void refactor(const SparseMatrix& a);

  /// Solves A x = b in place (applies the internal permutation).
  void solve(Vector& b) const;

  /// Solves with `refine_steps` rounds of iterative refinement against the
  /// original matrix, which must be the matrix passed to the constructor.
  Vector solve_refined(const SparseMatrix& a, const Vector& b,
                       int refine_steps = 2) const;

  /// Allocation-free variant of solve_refined: writes the solution into `x`
  /// (resized on first use) and reuses an internal residual workspace.
  /// `x` must not alias `b`.
  void solve_refined_into(const SparseMatrix& a, const Vector& b,
                          int refine_steps, Vector& x) const;

  /// Number of nonzeros in the factor L (excluding the unit diagonal).
  Index factor_nnz() const { return static_cast<Index>(li_.size()); }

  Index dim() const { return n_; }

  /// Number of negative pivots (inertia check for quasi-definite systems).
  int negative_pivots() const;

  const std::vector<Index>& permutation() const { return perm_; }

  /// Elimination tree over the permuted matrix (parent of each column, -1 at
  /// roots). Exposed so the persistent structure cache can serialise and
  /// verify the symbolic analysis.
  const std::vector<Index>& etree_parent() const { return parent_; }

  /// Factor access (tests and diagnostics): L is unit lower triangular,
  /// stored by columns with an implicit diagonal; D is the pivot vector.
  const std::vector<Index>& factor_col_ptr() const { return lp_; }
  const std::vector<Index>& factor_row_ind() const { return li_; }
  const std::vector<double>& factor_values() const { return lx_; }
  const std::vector<double>& diagonal() const { return d_; }

  /// Numeric factorisations performed so far (1 right after construction).
  int numeric_count() const { return numeric_count_; }

 private:
  void symbolic();
  void scatter_values(const SparseMatrix& a);
  void numeric();

  Index n_ = 0;
  Options options_;
  std::vector<Index> perm_;     // perm_[new] = old
  std::vector<Index> inv_perm_; // inv_perm_[old] = new
  std::vector<Index> parent_;   // elimination tree
  std::vector<Index> lp_;       // column pointers of L
  std::vector<Index> li_;       // row indices of L
  std::vector<double> lx_;      // values of L
  std::vector<double> d_;       // diagonal D

  // Pattern of the constructor matrix, kept to validate refactor() inputs.
  std::vector<Index> a_col_ptr_;
  std::vector<Index> a_row_ind_;
  // Permuted upper triangle: fixed pattern, values rewritten per refactor.
  std::vector<Index> up_ptr_;
  std::vector<Index> up_ind_;
  std::vector<double> up_val_;
  // scatter_[k] is the position in up_val_ receiving input nonzero k, or -1
  // when the entry lands in the strict lower triangle after permutation.
  std::vector<Index> scatter_;
  // Numeric-phase workspaces (sized once in the constructor).
  std::vector<double> work_y_;
  std::vector<Index> work_pattern_;
  std::vector<Index> work_flag_;
  std::vector<Index> work_next_;
  // Solve workspaces (mutable: solve() is logically const).
  mutable Vector work_xp_;
  mutable Vector work_r_;
  int numeric_count_ = 0;
  // False while a numeric pass is incomplete (it updates lx_/d_ in place, so
  // a mid-pass throw leaves mixed old/new columns); solve() refuses then.
  bool factor_valid_ = false;
};

}  // namespace bbs::linalg
