#include "bbs/linalg/sparse_ldlt.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "bbs/common/assert.hpp"

namespace bbs::linalg {

SparseLdlt::SparseLdlt(const SparseMatrix& a) : SparseLdlt(a, Options{}) {}

SparseLdlt::SparseLdlt(const SparseMatrix& a, const Options& options)
    : options_(options) {
  // The stored copy is read only for min_pivot/allow_indefinite; the
  // fixed_permutation pointee need not outlive the constructor, so drop the
  // pointer rather than keep it dangling.
  options_.fixed_permutation = nullptr;
  BBS_REQUIRE(a.rows() == a.cols(), "SparseLdlt: matrix must be square");
  n_ = a.rows();
  if (options.fixed_permutation != nullptr) {
    BBS_REQUIRE(is_permutation(*options.fixed_permutation) &&
                    options.fixed_permutation->size() ==
                        static_cast<std::size_t>(n_),
                "SparseLdlt: fixed_permutation is not a permutation of the "
                "matrix dimension");
    perm_ = *options.fixed_permutation;
  } else {
    perm_ = compute_ordering(a, options.ordering);
  }
  inv_perm_.resize(perm_.size());
  for (std::size_t i = 0; i < perm_.size(); ++i)
    inv_perm_[static_cast<std::size_t>(perm_[i])] = static_cast<Index>(i);

  a_col_ptr_ = a.col_ptr();
  a_row_ind_ = a.row_ind();

  // Pattern of the upper triangle of P A P': count entries per permuted
  // column, then place row indices and sort within columns.
  up_ptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (Index c = 0; c < n_; ++c) {
    const Index pc = inv_perm_[static_cast<std::size_t>(c)];
    for (Index k = a_col_ptr_[static_cast<std::size_t>(c)];
         k < a_col_ptr_[static_cast<std::size_t>(c) + 1]; ++k) {
      const Index pr =
          inv_perm_[static_cast<std::size_t>(a_row_ind_[static_cast<std::size_t>(k)])];
      if (pr <= pc) ++up_ptr_[static_cast<std::size_t>(pc) + 1];
    }
  }
  for (Index c = 0; c < n_; ++c)
    up_ptr_[static_cast<std::size_t>(c) + 1] +=
        up_ptr_[static_cast<std::size_t>(c)];
  up_ind_.assign(static_cast<std::size_t>(up_ptr_[static_cast<std::size_t>(n_)]),
                 0);
  {
    std::vector<Index> next(up_ptr_.begin(), up_ptr_.end() - 1);
    for (Index c = 0; c < n_; ++c) {
      const Index pc = inv_perm_[static_cast<std::size_t>(c)];
      for (Index k = a_col_ptr_[static_cast<std::size_t>(c)];
           k < a_col_ptr_[static_cast<std::size_t>(c) + 1]; ++k) {
        const Index pr = inv_perm_[static_cast<std::size_t>(
            a_row_ind_[static_cast<std::size_t>(k)])];
        if (pr <= pc)
          up_ind_[static_cast<std::size_t>(next[static_cast<std::size_t>(pc)]++)] =
              pr;
      }
    }
    for (Index c = 0; c < n_; ++c) {
      std::sort(up_ind_.begin() + up_ptr_[static_cast<std::size_t>(c)],
                up_ind_.begin() + up_ptr_[static_cast<std::size_t>(c) + 1]);
    }
  }
  up_val_.assign(up_ind_.size(), 0.0);

  // Scatter map: input nonzero -> slot in the permuted upper triangle.
  scatter_.assign(a_row_ind_.size(), -1);
  for (Index c = 0; c < n_; ++c) {
    const Index pc = inv_perm_[static_cast<std::size_t>(c)];
    for (Index k = a_col_ptr_[static_cast<std::size_t>(c)];
         k < a_col_ptr_[static_cast<std::size_t>(c) + 1]; ++k) {
      const Index pr = inv_perm_[static_cast<std::size_t>(
          a_row_ind_[static_cast<std::size_t>(k)])];
      if (pr > pc) continue;
      const auto begin = up_ind_.begin() + up_ptr_[static_cast<std::size_t>(pc)];
      const auto end =
          up_ind_.begin() + up_ptr_[static_cast<std::size_t>(pc) + 1];
      const auto it = std::lower_bound(begin, end, pr);
      BBS_ASSERT_MSG(it != end && *it == pr, "upper-triangle slot not found");
      scatter_[static_cast<std::size_t>(k)] =
          static_cast<Index>(it - up_ind_.begin());
    }
  }

  symbolic();

  work_y_.assign(static_cast<std::size_t>(n_), 0.0);
  work_pattern_.assign(static_cast<std::size_t>(n_), 0);
  work_flag_.assign(static_cast<std::size_t>(n_), -1);
  work_next_.assign(static_cast<std::size_t>(n_), 0);
  work_xp_.assign(static_cast<std::size_t>(n_), 0.0);
  work_r_.assign(static_cast<std::size_t>(n_), 0.0);

  scatter_values(a);
  numeric();
}

void SparseLdlt::refactor(const SparseMatrix& a) {
  BBS_REQUIRE(a.rows() == n_ && a.cols() == n_ &&
                  a.col_ptr() == a_col_ptr_ && a.row_ind() == a_row_ind_,
              "SparseLdlt::refactor: sparsity pattern differs from the "
              "matrix analysed at construction");
  scatter_values(a);
  numeric();
}

void SparseLdlt::scatter_values(const SparseMatrix& a) {
  // The scatter map is a bijection from the kept input entries onto the
  // upper-triangle slots (the permutation is bijective and the CSC input
  // has unique entries), so plain assignment covers every slot.
  const std::vector<double>& v = a.values();
  for (std::size_t k = 0; k < scatter_.size(); ++k) {
    const Index slot = scatter_[k];
    if (slot >= 0) up_val_[static_cast<std::size_t>(slot)] = v[k];
  }
}

void SparseLdlt::symbolic() {
  // Elimination tree and column counts of L (Liu's algorithm as used in the
  // LDL package): for column k, walk from each row index i < k towards the
  // root, stopping at nodes already reached in this column's sweep.
  parent_.assign(static_cast<std::size_t>(n_), -1);
  std::vector<Index> flag(static_cast<std::size_t>(n_), -1);
  std::vector<Index> lnz(static_cast<std::size_t>(n_), 0);

  for (Index k = 0; k < n_; ++k) {
    flag[static_cast<std::size_t>(k)] = k;
    for (Index p = up_ptr_[static_cast<std::size_t>(k)];
         p < up_ptr_[static_cast<std::size_t>(k) + 1]; ++p) {
      Index i = up_ind_[static_cast<std::size_t>(p)];
      while (i < k && flag[static_cast<std::size_t>(i)] != k) {
        if (parent_[static_cast<std::size_t>(i)] == -1)
          parent_[static_cast<std::size_t>(i)] = k;
        ++lnz[static_cast<std::size_t>(i)];  // L(k, i) is a nonzero
        flag[static_cast<std::size_t>(i)] = k;
        i = parent_[static_cast<std::size_t>(i)];
      }
    }
  }

  lp_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (Index k = 0; k < n_; ++k)
    lp_[static_cast<std::size_t>(k) + 1] =
        lp_[static_cast<std::size_t>(k)] + lnz[static_cast<std::size_t>(k)];
  li_.assign(static_cast<std::size_t>(lp_[static_cast<std::size_t>(n_)]), 0);
  lx_.assign(li_.size(), 0.0);
  d_.assign(static_cast<std::size_t>(n_), 0.0);
}

void SparseLdlt::numeric() {
  // A pass that throws mid-column leaves lx_/d_ half-updated; the factor
  // stays poisoned until a later pass completes.
  factor_valid_ = false;
  // Reset the column-tagged workspaces: tags repeat across numeric passes,
  // and work_y_ may hold residue if a previous pass threw mid-column.
  std::fill(work_y_.begin(), work_y_.end(), 0.0);
  std::fill(work_flag_.begin(), work_flag_.end(), -1);
  for (Index k = 0; k < n_; ++k)
    work_next_[static_cast<std::size_t>(k)] = lp_[static_cast<std::size_t>(k)];
  ++numeric_count_;

  std::vector<double>& y = work_y_;
  std::vector<Index>& pattern = work_pattern_;
  std::vector<Index>& flag = work_flag_;
  std::vector<Index>& lnz_next = work_next_;

  for (Index k = 0; k < n_; ++k) {
    // Scatter column k of the (permuted) upper triangle into y and compute
    // the nonzero pattern of row k of L in topological order.
    Index top = n_;
    flag[static_cast<std::size_t>(k)] = k;
    y[static_cast<std::size_t>(k)] = 0.0;
    for (Index p = up_ptr_[static_cast<std::size_t>(k)];
         p < up_ptr_[static_cast<std::size_t>(k) + 1]; ++p) {
      Index i = up_ind_[static_cast<std::size_t>(p)];
      if (i > k) continue;
      y[static_cast<std::size_t>(i)] += up_val_[static_cast<std::size_t>(p)];
      Index len = 0;
      while (flag[static_cast<std::size_t>(i)] != k) {
        pattern[static_cast<std::size_t>(len++)] = i;
        flag[static_cast<std::size_t>(i)] = k;
        i = parent_[static_cast<std::size_t>(i)];
      }
      while (len > 0) pattern[static_cast<std::size_t>(--top)] =
          pattern[static_cast<std::size_t>(--len)];
    }

    double dk = y[static_cast<std::size_t>(k)];
    y[static_cast<std::size_t>(k)] = 0.0;

    // Sparse triangular solve along the pattern: for each i in the pattern
    // (ascending elimination order), finalise L(k, i) and update.
    for (Index s = top; s < n_; ++s) {
      const Index i = pattern[static_cast<std::size_t>(s)];
      const double yi = y[static_cast<std::size_t>(i)];
      y[static_cast<std::size_t>(i)] = 0.0;
      const Index pend = lnz_next[static_cast<std::size_t>(i)];
      for (Index p = lp_[static_cast<std::size_t>(i)]; p < pend; ++p) {
        y[static_cast<std::size_t>(li_[static_cast<std::size_t>(p)])] -=
            lx_[static_cast<std::size_t>(p)] * yi;
      }
      const double lki = yi / d_[static_cast<std::size_t>(i)];
      dk -= lki * yi;
      li_[static_cast<std::size_t>(pend)] = k;
      lx_[static_cast<std::size_t>(pend)] = lki;
      ++lnz_next[static_cast<std::size_t>(i)];
    }

    if (std::abs(dk) < options_.min_pivot) {
      throw NumericalError("SparseLdlt: pivot " + std::to_string(k) +
                           " below minimum magnitude (" + std::to_string(dk) +
                           ")");
    }
    if (dk < 0.0 && !options_.allow_indefinite) {
      throw NumericalError("SparseLdlt: negative pivot " + std::to_string(k) +
                           " for a matrix required to be positive definite");
    }
    d_[static_cast<std::size_t>(k)] = dk;
  }
  factor_valid_ = true;
}

void SparseLdlt::solve(Vector& b) const {
  BBS_REQUIRE(factor_valid_,
              "SparseLdlt::solve: factorisation is invalid (a refactor threw "
              "mid-pass); refactor successfully before solving");
  BBS_REQUIRE(b.size() == static_cast<std::size_t>(n_),
              "SparseLdlt::solve: size mismatch");
  // Permute: xp = P b.
  Vector& xp = work_xp_;
  for (Index i = 0; i < n_; ++i)
    xp[static_cast<std::size_t>(i)] =
        b[static_cast<std::size_t>(perm_[static_cast<std::size_t>(i)])];

  // Forward solve L y = xp (L is unit lower triangular, stored by columns).
  for (Index j = 0; j < n_; ++j) {
    const double xj = xp[static_cast<std::size_t>(j)];
    if (xj == 0.0) continue;
    for (Index p = lp_[static_cast<std::size_t>(j)];
         p < lp_[static_cast<std::size_t>(j) + 1]; ++p) {
      xp[static_cast<std::size_t>(li_[static_cast<std::size_t>(p)])] -=
          lx_[static_cast<std::size_t>(p)] * xj;
    }
  }
  // Diagonal.
  for (Index j = 0; j < n_; ++j)
    xp[static_cast<std::size_t>(j)] /= d_[static_cast<std::size_t>(j)];
  // Backward solve L' x = y.
  for (Index j = n_ - 1; j >= 0; --j) {
    double s = xp[static_cast<std::size_t>(j)];
    for (Index p = lp_[static_cast<std::size_t>(j)];
         p < lp_[static_cast<std::size_t>(j) + 1]; ++p) {
      s -= lx_[static_cast<std::size_t>(p)] *
           xp[static_cast<std::size_t>(li_[static_cast<std::size_t>(p)])];
    }
    xp[static_cast<std::size_t>(j)] = s;
  }

  // Un-permute: b = P' xp.
  for (Index i = 0; i < n_; ++i)
    b[static_cast<std::size_t>(perm_[static_cast<std::size_t>(i)])] =
        xp[static_cast<std::size_t>(i)];
}

Vector SparseLdlt::solve_refined(const SparseMatrix& a, const Vector& b,
                                 int refine_steps) const {
  Vector x;
  solve_refined_into(a, b, refine_steps, x);
  return x;
}

void SparseLdlt::solve_refined_into(const SparseMatrix& a, const Vector& b,
                                    int refine_steps, Vector& x) const {
  BBS_REQUIRE(&x != &b,
              "SparseLdlt::solve_refined_into: x must not alias b (the "
              "refinement residual is computed against the original b)");
  x = b;
  solve(x);
  Vector& r = work_r_;
  for (int it = 0; it < refine_steps; ++it) {
    // r = b - A x; dx = A^{-1} r; x += dx.
    r = b;
    a.gaxpy(-1.0, x, r);
    solve(r);
    axpy(1.0, r, x);
  }
}

int SparseLdlt::negative_pivots() const {
  int count = 0;
  for (double d : d_)
    if (d < 0.0) ++count;
  return count;
}

}  // namespace bbs::linalg
