#include "bbs/linalg/sparse_ldlt.hpp"

#include <cmath>
#include <string>

#include "bbs/common/assert.hpp"

namespace bbs::linalg {

namespace {

/// Extracts the upper triangle (including the diagonal) of `a` in CSC form.
SparseMatrix upper_triangle(const SparseMatrix& a) {
  TripletList t(a.rows(), a.cols());
  for (Index c = 0; c < a.cols(); ++c) {
    for (Index k = a.col_ptr()[c]; k < a.col_ptr()[c + 1]; ++k) {
      const Index r = a.row_ind()[k];
      if (r <= c) t.add(r, c, a.values()[k]);
    }
  }
  return SparseMatrix::from_triplets(t);
}

}  // namespace

SparseLdlt::SparseLdlt(const SparseMatrix& a) : SparseLdlt(a, Options{}) {}

SparseLdlt::SparseLdlt(const SparseMatrix& a, const Options& options) {
  BBS_REQUIRE(a.rows() == a.cols(), "SparseLdlt: matrix must be square");
  n_ = a.rows();
  if (options.fixed_permutation != nullptr) {
    BBS_REQUIRE(is_permutation(*options.fixed_permutation) &&
                    options.fixed_permutation->size() ==
                        static_cast<std::size_t>(n_),
                "SparseLdlt: fixed_permutation is not a permutation of the "
                "matrix dimension");
    perm_ = *options.fixed_permutation;
  } else {
    perm_ = compute_ordering(a, options.ordering);
  }
  inv_perm_.resize(perm_.size());
  for (std::size_t i = 0; i < perm_.size(); ++i)
    inv_perm_[static_cast<std::size_t>(perm_[i])] = static_cast<Index>(i);

  const SparseMatrix permuted = a.permute_symmetric(perm_);
  const SparseMatrix upper = upper_triangle(permuted);
  symbolic(upper);
  numeric(upper, options);
}

void SparseLdlt::symbolic(const SparseMatrix& upper) {
  // Elimination tree and column counts of L (Liu's algorithm as used in the
  // LDL package): for column k, walk from each row index i < k towards the
  // root, stopping at nodes already reached in this column's sweep.
  parent_.assign(static_cast<std::size_t>(n_), -1);
  std::vector<Index> flag(static_cast<std::size_t>(n_), -1);
  std::vector<Index> lnz(static_cast<std::size_t>(n_), 0);

  for (Index k = 0; k < n_; ++k) {
    flag[static_cast<std::size_t>(k)] = k;
    for (Index p = upper.col_ptr()[k]; p < upper.col_ptr()[k + 1]; ++p) {
      Index i = upper.row_ind()[p];
      while (i < k && flag[static_cast<std::size_t>(i)] != k) {
        if (parent_[static_cast<std::size_t>(i)] == -1)
          parent_[static_cast<std::size_t>(i)] = k;
        ++lnz[static_cast<std::size_t>(i)];  // L(k, i) is a nonzero
        flag[static_cast<std::size_t>(i)] = k;
        i = parent_[static_cast<std::size_t>(i)];
      }
    }
  }

  lp_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (Index k = 0; k < n_; ++k)
    lp_[static_cast<std::size_t>(k) + 1] =
        lp_[static_cast<std::size_t>(k)] + lnz[static_cast<std::size_t>(k)];
  li_.assign(static_cast<std::size_t>(lp_[static_cast<std::size_t>(n_)]), 0);
  lx_.assign(li_.size(), 0.0);
  d_.assign(static_cast<std::size_t>(n_), 0.0);
}

void SparseLdlt::numeric(const SparseMatrix& upper, const Options& options) {
  std::vector<double> y(static_cast<std::size_t>(n_), 0.0);
  std::vector<Index> pattern(static_cast<std::size_t>(n_), 0);
  std::vector<Index> flag(static_cast<std::size_t>(n_), -1);
  std::vector<Index> lnz_next(static_cast<std::size_t>(n_), 0);
  for (Index k = 0; k < n_; ++k)
    lnz_next[static_cast<std::size_t>(k)] = lp_[static_cast<std::size_t>(k)];

  for (Index k = 0; k < n_; ++k) {
    // Scatter column k of the (permuted) upper triangle into y and compute
    // the nonzero pattern of row k of L in topological order.
    Index top = n_;
    flag[static_cast<std::size_t>(k)] = k;
    y[static_cast<std::size_t>(k)] = 0.0;
    for (Index p = upper.col_ptr()[k]; p < upper.col_ptr()[k + 1]; ++p) {
      Index i = upper.row_ind()[p];
      if (i > k) continue;
      y[static_cast<std::size_t>(i)] += upper.values()[p];
      Index len = 0;
      while (flag[static_cast<std::size_t>(i)] != k) {
        pattern[static_cast<std::size_t>(len++)] = i;
        flag[static_cast<std::size_t>(i)] = k;
        i = parent_[static_cast<std::size_t>(i)];
      }
      while (len > 0) pattern[static_cast<std::size_t>(--top)] =
          pattern[static_cast<std::size_t>(--len)];
    }

    double dk = y[static_cast<std::size_t>(k)];
    y[static_cast<std::size_t>(k)] = 0.0;

    // Sparse triangular solve along the pattern: for each i in the pattern
    // (ascending elimination order), finalise L(k, i) and update.
    for (Index s = top; s < n_; ++s) {
      const Index i = pattern[static_cast<std::size_t>(s)];
      const double yi = y[static_cast<std::size_t>(i)];
      y[static_cast<std::size_t>(i)] = 0.0;
      const Index pend = lnz_next[static_cast<std::size_t>(i)];
      for (Index p = lp_[static_cast<std::size_t>(i)]; p < pend; ++p) {
        y[static_cast<std::size_t>(li_[static_cast<std::size_t>(p)])] -=
            lx_[static_cast<std::size_t>(p)] * yi;
      }
      const double lki = yi / d_[static_cast<std::size_t>(i)];
      dk -= lki * yi;
      li_[static_cast<std::size_t>(pend)] = k;
      lx_[static_cast<std::size_t>(pend)] = lki;
      ++lnz_next[static_cast<std::size_t>(i)];
    }

    if (std::abs(dk) < options.min_pivot) {
      throw NumericalError("SparseLdlt: pivot " + std::to_string(k) +
                           " below minimum magnitude (" + std::to_string(dk) +
                           ")");
    }
    if (dk < 0.0 && !options.allow_indefinite) {
      throw NumericalError("SparseLdlt: negative pivot " + std::to_string(k) +
                           " for a matrix required to be positive definite");
    }
    d_[static_cast<std::size_t>(k)] = dk;
  }
}

void SparseLdlt::solve(Vector& b) const {
  BBS_REQUIRE(b.size() == static_cast<std::size_t>(n_),
              "SparseLdlt::solve: size mismatch");
  // Permute: xp = P b.
  Vector xp(b.size());
  for (Index i = 0; i < n_; ++i)
    xp[static_cast<std::size_t>(i)] =
        b[static_cast<std::size_t>(perm_[static_cast<std::size_t>(i)])];

  // Forward solve L y = xp (L is unit lower triangular, stored by columns).
  for (Index j = 0; j < n_; ++j) {
    const double xj = xp[static_cast<std::size_t>(j)];
    if (xj == 0.0) continue;
    for (Index p = lp_[static_cast<std::size_t>(j)];
         p < lp_[static_cast<std::size_t>(j) + 1]; ++p) {
      xp[static_cast<std::size_t>(li_[static_cast<std::size_t>(p)])] -=
          lx_[static_cast<std::size_t>(p)] * xj;
    }
  }
  // Diagonal.
  for (Index j = 0; j < n_; ++j)
    xp[static_cast<std::size_t>(j)] /= d_[static_cast<std::size_t>(j)];
  // Backward solve L' x = y.
  for (Index j = n_ - 1; j >= 0; --j) {
    double s = xp[static_cast<std::size_t>(j)];
    for (Index p = lp_[static_cast<std::size_t>(j)];
         p < lp_[static_cast<std::size_t>(j) + 1]; ++p) {
      s -= lx_[static_cast<std::size_t>(p)] *
           xp[static_cast<std::size_t>(li_[static_cast<std::size_t>(p)])];
    }
    xp[static_cast<std::size_t>(j)] = s;
  }

  // Un-permute: b = P' xp.
  for (Index i = 0; i < n_; ++i)
    b[static_cast<std::size_t>(perm_[static_cast<std::size_t>(i)])] =
        xp[static_cast<std::size_t>(i)];
}

Vector SparseLdlt::solve_refined(const SparseMatrix& a, const Vector& b,
                                 int refine_steps) const {
  Vector x = b;
  solve(x);
  for (int it = 0; it < refine_steps; ++it) {
    // r = b - A x; dx = A^{-1} r; x += dx.
    Vector r = b;
    a.gaxpy(-1.0, x, r);
    solve(r);
    axpy(1.0, r, x);
  }
  return x;
}

int SparseLdlt::negative_pivots() const {
  int count = 0;
  for (double d : d_)
    if (d < 0.0) ++count;
  return count;
}

}  // namespace bbs::linalg
