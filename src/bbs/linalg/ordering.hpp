// Fill-reducing orderings for the sparse LDL^T factorisation.
//
// The normal-equation matrices produced by the interior-point solver inherit
// the topology of the task graphs, so orderings matter for the scaling
// benchmark (bench_ablation_ordering). Three methods are provided:
//   * Natural           — identity permutation (baseline),
//   * ReverseCuthillMcKee — bandwidth-reducing BFS ordering,
//   * MinimumDegree     — greedy minimum-degree on the elimination graph.
#pragma once

#include <vector>

#include "bbs/linalg/sparse_matrix.hpp"

namespace bbs::linalg {

enum class OrderingMethod {
  kNatural,
  kReverseCuthillMcKee,
  kMinimumDegree,
};

/// Computes a fill-reducing permutation for a square matrix whose *pattern*
/// is interpreted symmetrically (the union of the stored pattern and its
/// transpose is used; values are ignored). Returns perm with
/// perm[new_index] = old_index.
std::vector<Index> compute_ordering(const SparseMatrix& pattern,
                                    OrderingMethod method);

/// True iff `p` is a permutation of 0..p.size()-1.
bool is_permutation(const std::vector<Index>& p);

/// Human-readable method name for reports.
const char* ordering_name(OrderingMethod method);

}  // namespace bbs::linalg
