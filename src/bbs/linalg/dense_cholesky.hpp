// Dense LDL^T factorisation of symmetric positive-definite (or, with
// regularisation, quasi-definite) matrices.
//
// Used for the reference KKT path of the interior-point solver (tests compare
// the sparse path against this) and for small dense systems in the NT scaling.
#pragma once

#include "bbs/linalg/dense_matrix.hpp"

namespace bbs::linalg {

/// LDL^T factorisation without pivoting. Suitable for SPD matrices and for
/// symmetric quasi-definite matrices (which are strongly factorisable).
class DenseLdlt {
 public:
  /// Factorises A (symmetric; only the lower triangle is read).
  /// Throws NumericalError if a pivot collapses below `min_pivot` in
  /// magnitude.
  explicit DenseLdlt(const DenseMatrix& a, double min_pivot = 1e-13);

  /// Solves A x = b in place.
  void solve(Vector& b) const;

  std::size_t dim() const { return n_; }

  /// Product of pivot signs; +1 for SPD inputs.
  int sign_of_determinant() const;

 private:
  std::size_t n_ = 0;
  DenseMatrix l_;   // unit lower-triangular factor
  Vector d_;        // diagonal of D
};

/// Convenience: solves the SPD system A x = b, returning x.
Vector solve_spd(const DenseMatrix& a, const Vector& b);

}  // namespace bbs::linalg
