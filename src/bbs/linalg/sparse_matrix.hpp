// Compressed sparse column (CSC) matrices and the kernels the interior-point
// solver needs: triplet assembly, mat-vec with the matrix and its transpose,
// transposition, general sparse matrix-matrix product, and symmetric
// permutation.
//
// Indices are std::size_t-free by design: int32 is plenty for the problem
// sizes of this library and keeps the factorisation caches compact.
#pragma once

#include <cstdint>
#include <vector>

#include "bbs/linalg/dense_matrix.hpp"

namespace bbs::linalg {

using Index = std::int32_t;

/// Triplet (coordinate-form) accumulator used to assemble sparse matrices.
/// Duplicate entries are summed during compression, which lets constraint
/// builders emit coefficients in any convenient order.
class TripletList {
 public:
  TripletList(Index rows, Index cols);

  void add(Index row, Index col, double value);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  std::size_t entries() const { return rows_idx_.size(); }

  const std::vector<Index>& row_indices() const { return rows_idx_; }
  const std::vector<Index>& col_indices() const { return cols_idx_; }
  const std::vector<double>& values() const { return values_; }

 private:
  Index rows_;
  Index cols_;
  std::vector<Index> rows_idx_;
  std::vector<Index> cols_idx_;
  std::vector<double> values_;
};

/// Immutable compressed-sparse-column matrix.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Compresses a triplet list; duplicates are summed, explicit zeros kept.
  static SparseMatrix from_triplets(const TripletList& t);

  /// Builds a matrix from an explicit CSC pattern with all-zero values.
  /// Row indices must be in range, sorted and unique within each column.
  /// Used by the cached-pattern kernels, which fill the values in place.
  static SparseMatrix from_pattern(Index rows, Index cols,
                                   std::vector<Index> col_ptr,
                                   std::vector<Index> row_ind);

  /// Identity of size n.
  static SparseMatrix identity(Index n);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index nnz() const { return static_cast<Index>(row_ind_.size()); }

  const std::vector<Index>& col_ptr() const { return col_ptr_; }
  const std::vector<Index>& row_ind() const { return row_ind_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  /// y += alpha * A * x.
  void gaxpy(double alpha, const Vector& x, Vector& y) const;

  /// y += alpha * A' * x.
  void gaxpy_transpose(double alpha, const Vector& x, Vector& y) const;

  /// Returns A * x.
  Vector multiply(const Vector& x) const;

  /// Returns A' * x.
  Vector multiply_transpose(const Vector& x) const;

  /// Returns A'.
  SparseMatrix transpose() const;

  /// Returns A * B (general SpGEMM). Entry order within columns is sorted.
  SparseMatrix multiply(const SparseMatrix& b) const;

  /// Returns P A P' for a symmetric matrix given as a full pattern (both
  /// triangles stored). perm[new] = old.
  SparseMatrix permute_symmetric(const std::vector<Index>& perm) const;

  /// Densifies (for tests and small reference computations).
  DenseMatrix to_dense() const;

  /// Largest absolute entry (0 for an empty matrix).
  double norm_max() const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Index> col_ptr_;   // size cols_ + 1
  std::vector<Index> row_ind_;   // size nnz, sorted within each column
  std::vector<double> values_;   // size nnz
};

/// Sparse matrix product with a cached symbolic pattern.
///
/// The interior-point method rebuilds G' W^{-2} G on every iteration with an
/// identical sparsity structure, so recomputing the output pattern (and
/// reallocating the result) each time is pure overhead. This helper computes
/// the structural pattern of C = A * B once — treating every stored entry as
/// nonzero, so later value changes can never escape the cached pattern — and
/// afterwards recomputes only the values, in place, with zero allocation per
/// call.
class CachedSpGemm {
 public:
  CachedSpGemm() = default;

  /// Computes the pattern of C = A * B and fills the initial values. With
  /// `include_diagonal`, diagonal entries are added to the pattern even
  /// where structurally absent (the KKT assembly adds regularisation there;
  /// requires a square product).
  CachedSpGemm(const SparseMatrix& a, const SparseMatrix& b,
               bool include_diagonal = false);

  /// Recomputes the values of C = A * B in place. The arguments must carry
  /// exactly the sparsity patterns the cache was built from; a pattern
  /// change throws ContractViolation.
  const SparseMatrix& multiply(const SparseMatrix& a, const SparseMatrix& b);

  const SparseMatrix& result() const { return c_; }

 private:
  SparseMatrix c_;
  std::vector<double> work_;  // dense column accumulator, size a.rows()
  Index a_rows_ = 0;
  Index a_cols_ = 0;
  Index b_cols_ = 0;
  // Input patterns from construction, for multiply() validation.
  std::vector<Index> a_col_ptr_;
  std::vector<Index> a_row_ind_;
  std::vector<Index> b_col_ptr_;
  std::vector<Index> b_row_ind_;
};

}  // namespace bbs::linalg
