#include "bbs/linalg/dense_matrix.hpp"

#include <cmath>

#include "bbs/common/assert.hpp"

namespace bbs::linalg {

void axpy(double alpha, const Vector& x, Vector& y) {
  BBS_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double dot(const Vector& a, const Vector& b) {
  BBS_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const Vector& v) { return std::sqrt(dot(v, v)); }

double norm_inf(const Vector& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

void scale(Vector& v, double alpha) {
  for (double& x : v) x *= alpha;
}

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector DenseMatrix::multiply(const Vector& x) const {
  BBS_REQUIRE(x.size() == cols_, "DenseMatrix::multiply: size mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) s += row[c] * x[c];
    y[r] = s;
  }
  return y;
}

Vector DenseMatrix::multiply_transpose(const Vector& x) const {
  BBS_REQUIRE(x.size() == rows_,
              "DenseMatrix::multiply_transpose: size mismatch");
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  BBS_REQUIRE(cols_ == other.rows_, "DenseMatrix::multiply: shape mismatch");
  DenseMatrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

double DenseMatrix::frobenius_norm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

}  // namespace bbs::linalg
