// Dense linear algebra used by the simplex solver, by small per-cone blocks of
// the interior-point method, and as a reference implementation against which
// the sparse kernels are validated.
//
// Vectors are plain std::vector<double>; free functions provide the BLAS-1
// operations the solvers need. DenseMatrix is a row-major value type.
#pragma once

#include <cstddef>
#include <vector>

namespace bbs::linalg {

using Vector = std::vector<double>;

/// y += alpha * x (sizes must match).
void axpy(double alpha, const Vector& x, Vector& y);

/// Dot product (sizes must match).
double dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double norm2(const Vector& v);

/// Infinity norm.
double norm_inf(const Vector& v);

/// x *= alpha.
void scale(Vector& v, double alpha);

/// Row-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static DenseMatrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// y = A x.
  Vector multiply(const Vector& x) const;

  /// y = A' x.
  Vector multiply_transpose(const Vector& x) const;

  /// C = A B.
  DenseMatrix multiply(const DenseMatrix& other) const;

  /// A'.
  DenseMatrix transpose() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Raw storage (row-major), exposed for the factorisations.
  Vector& data() { return data_; }
  const Vector& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Vector data_;
};

}  // namespace bbs::linalg
