#include "bbs/linalg/sparse_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "bbs/common/assert.hpp"

namespace bbs::linalg {

TripletList::TripletList(Index rows, Index cols) : rows_(rows), cols_(cols) {
  BBS_REQUIRE(rows >= 0 && cols >= 0, "TripletList: negative dimension");
}

void TripletList::add(Index row, Index col, double value) {
  BBS_REQUIRE(row >= 0 && row < rows_ && col >= 0 && col < cols_,
              "TripletList::add: index out of range");
  rows_idx_.push_back(row);
  cols_idx_.push_back(col);
  values_.push_back(value);
}

SparseMatrix SparseMatrix::from_triplets(const TripletList& t) {
  SparseMatrix m;
  m.rows_ = t.rows();
  m.cols_ = t.cols();
  const std::size_t nz = t.entries();

  // Count entries per column.
  std::vector<Index> count(static_cast<std::size_t>(m.cols_) + 1, 0);
  for (std::size_t k = 0; k < nz; ++k) ++count[t.col_indices()[k] + 1];
  m.col_ptr_.assign(count.begin(), count.end());
  for (Index c = 0; c < m.cols_; ++c) m.col_ptr_[c + 1] += m.col_ptr_[c];

  // Scatter.
  std::vector<Index> next(m.col_ptr_.begin(), m.col_ptr_.end() - 1);
  m.row_ind_.resize(nz);
  m.values_.resize(nz);
  for (std::size_t k = 0; k < nz; ++k) {
    const Index c = t.col_indices()[k];
    const Index slot = next[c]++;
    m.row_ind_[slot] = t.row_indices()[k];
    m.values_[slot] = t.values()[k];
  }

  // Sort within columns and sum duplicates.
  std::vector<Index> out_ind;
  std::vector<double> out_val;
  out_ind.reserve(nz);
  out_val.reserve(nz);
  std::vector<Index> new_ptr(static_cast<std::size_t>(m.cols_) + 1, 0);
  std::vector<std::pair<Index, double>> col_entries;
  for (Index c = 0; c < m.cols_; ++c) {
    col_entries.clear();
    for (Index k = m.col_ptr_[c]; k < m.col_ptr_[c + 1]; ++k) {
      col_entries.emplace_back(m.row_ind_[k], m.values_[k]);
    }
    std::sort(col_entries.begin(), col_entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    const std::size_t col_start = out_ind.size();
    for (const auto& [row, val] : col_entries) {
      if (out_ind.size() > col_start && out_ind.back() == row) {
        out_val.back() += val;  // duplicate entry within the column: sum
      } else {
        out_ind.push_back(row);
        out_val.push_back(val);
      }
    }
    new_ptr[c + 1] = static_cast<Index>(out_ind.size());
  }
  m.col_ptr_ = std::move(new_ptr);
  m.row_ind_ = std::move(out_ind);
  m.values_ = std::move(out_val);
  return m;
}

SparseMatrix SparseMatrix::from_pattern(Index rows, Index cols,
                                        std::vector<Index> col_ptr,
                                        std::vector<Index> row_ind) {
  BBS_REQUIRE(rows >= 0 && cols >= 0 &&
                  col_ptr.size() == static_cast<std::size_t>(cols) + 1 &&
                  col_ptr.front() == 0 &&
                  col_ptr.back() == static_cast<Index>(row_ind.size()) &&
                  std::is_sorted(col_ptr.begin(), col_ptr.end()),
              "SparseMatrix::from_pattern: malformed column pointers");
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.col_ptr_ = std::move(col_ptr);
  m.row_ind_ = std::move(row_ind);
  m.values_.assign(m.row_ind_.size(), 0.0);
  return m;
}

SparseMatrix SparseMatrix::identity(Index n) {
  TripletList t(n, n);
  for (Index i = 0; i < n; ++i) t.add(i, i, 1.0);
  return from_triplets(t);
}

void SparseMatrix::gaxpy(double alpha, const Vector& x, Vector& y) const {
  BBS_REQUIRE(x.size() == static_cast<std::size_t>(cols_) &&
                  y.size() == static_cast<std::size_t>(rows_),
              "SparseMatrix::gaxpy: size mismatch");
  for (Index c = 0; c < cols_; ++c) {
    const double xc = alpha * x[static_cast<std::size_t>(c)];
    if (xc == 0.0) continue;
    for (Index k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
      y[static_cast<std::size_t>(row_ind_[k])] += values_[k] * xc;
    }
  }
}

void SparseMatrix::gaxpy_transpose(double alpha, const Vector& x,
                                   Vector& y) const {
  BBS_REQUIRE(x.size() == static_cast<std::size_t>(rows_) &&
                  y.size() == static_cast<std::size_t>(cols_),
              "SparseMatrix::gaxpy_transpose: size mismatch");
  for (Index c = 0; c < cols_; ++c) {
    double s = 0.0;
    for (Index k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
      s += values_[k] * x[static_cast<std::size_t>(row_ind_[k])];
    }
    y[static_cast<std::size_t>(c)] += alpha * s;
  }
}

Vector SparseMatrix::multiply(const Vector& x) const {
  Vector y(static_cast<std::size_t>(rows_), 0.0);
  gaxpy(1.0, x, y);
  return y;
}

Vector SparseMatrix::multiply_transpose(const Vector& x) const {
  Vector y(static_cast<std::size_t>(cols_), 0.0);
  gaxpy_transpose(1.0, x, y);
  return y;
}

SparseMatrix SparseMatrix::transpose() const {
  SparseMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.col_ptr_.assign(static_cast<std::size_t>(rows_) + 1, 0);
  t.row_ind_.resize(row_ind_.size());
  t.values_.resize(values_.size());
  // Count per row of this matrix == per column of the transpose.
  for (Index k = 0; k < nnz(); ++k) ++t.col_ptr_[row_ind_[k] + 1];
  for (Index c = 0; c < t.cols_; ++c) t.col_ptr_[c + 1] += t.col_ptr_[c];
  std::vector<Index> next(t.col_ptr_.begin(), t.col_ptr_.end() - 1);
  for (Index c = 0; c < cols_; ++c) {
    for (Index k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
      const Index slot = next[row_ind_[k]]++;
      t.row_ind_[slot] = c;
      t.values_[slot] = values_[k];
    }
  }
  return t;  // columns are sorted because we iterate source columns in order
}

SparseMatrix SparseMatrix::multiply(const SparseMatrix& b) const {
  BBS_REQUIRE(cols_ == b.rows_, "SparseMatrix::multiply: shape mismatch");
  SparseMatrix c;
  c.rows_ = rows_;
  c.cols_ = b.cols_;
  c.col_ptr_.assign(static_cast<std::size_t>(b.cols_) + 1, 0);

  std::vector<double> work(static_cast<std::size_t>(rows_), 0.0);
  std::vector<Index> mark(static_cast<std::size_t>(rows_), -1);
  std::vector<Index> pattern;
  pattern.reserve(static_cast<std::size_t>(rows_));

  for (Index j = 0; j < b.cols_; ++j) {
    pattern.clear();
    for (Index kb = b.col_ptr_[j]; kb < b.col_ptr_[j + 1]; ++kb) {
      const Index col_a = b.row_ind_[kb];
      const double bv = b.values_[kb];
      if (bv == 0.0) continue;
      for (Index ka = col_ptr_[col_a]; ka < col_ptr_[col_a + 1]; ++ka) {
        const Index r = row_ind_[ka];
        if (mark[static_cast<std::size_t>(r)] != j) {
          mark[static_cast<std::size_t>(r)] = j;
          work[static_cast<std::size_t>(r)] = 0.0;
          pattern.push_back(r);
        }
        work[static_cast<std::size_t>(r)] += values_[ka] * bv;
      }
    }
    std::sort(pattern.begin(), pattern.end());
    for (Index r : pattern) {
      c.row_ind_.push_back(r);
      c.values_.push_back(work[static_cast<std::size_t>(r)]);
    }
    c.col_ptr_[j + 1] = static_cast<Index>(c.row_ind_.size());
  }
  return c;
}

SparseMatrix SparseMatrix::permute_symmetric(
    const std::vector<Index>& perm) const {
  BBS_REQUIRE(rows_ == cols_, "permute_symmetric: matrix must be square");
  BBS_REQUIRE(perm.size() == static_cast<std::size_t>(rows_),
              "permute_symmetric: permutation size mismatch");
  // inv[old] = new.
  std::vector<Index> inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i)
    inv[static_cast<std::size_t>(perm[i])] = static_cast<Index>(i);

  TripletList t(rows_, cols_);
  for (Index c = 0; c < cols_; ++c) {
    for (Index k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
      t.add(inv[static_cast<std::size_t>(row_ind_[k])],
            inv[static_cast<std::size_t>(c)], values_[k]);
    }
  }
  return from_triplets(t);
}

DenseMatrix SparseMatrix::to_dense() const {
  DenseMatrix d(static_cast<std::size_t>(rows_),
                static_cast<std::size_t>(cols_));
  for (Index c = 0; c < cols_; ++c) {
    for (Index k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
      d(static_cast<std::size_t>(row_ind_[k]), static_cast<std::size_t>(c)) +=
          values_[k];
    }
  }
  return d;
}

double SparseMatrix::norm_max() const {
  double m = 0.0;
  for (double v : values_) m = std::max(m, std::abs(v));
  return m;
}

CachedSpGemm::CachedSpGemm(const SparseMatrix& a, const SparseMatrix& b,
                           bool include_diagonal) {
  BBS_REQUIRE(a.cols() == b.rows(), "CachedSpGemm: shape mismatch");
  BBS_REQUIRE(!include_diagonal || a.rows() == b.cols(),
              "CachedSpGemm: include_diagonal requires a square product");
  a_rows_ = a.rows();
  a_cols_ = a.cols();
  b_cols_ = b.cols();
  a_col_ptr_ = a.col_ptr();
  a_row_ind_ = a.row_ind();
  b_col_ptr_ = b.col_ptr();
  b_row_ind_ = b.row_ind();

  // Symbolic pass: the structural pattern of C = A * B, ignoring values so
  // the pattern is a superset of the numeric pattern for any value update.
  std::vector<Index> col_ptr(static_cast<std::size_t>(b_cols_) + 1, 0);
  std::vector<Index> row_ind;
  std::vector<Index> mark(static_cast<std::size_t>(a_rows_), -1);
  std::vector<Index> pattern;
  pattern.reserve(static_cast<std::size_t>(a_rows_));
  for (Index j = 0; j < b_cols_; ++j) {
    pattern.clear();
    for (Index kb = b.col_ptr()[j]; kb < b.col_ptr()[j + 1]; ++kb) {
      const Index ca = b.row_ind()[kb];
      for (Index ka = a.col_ptr()[ca]; ka < a.col_ptr()[ca + 1]; ++ka) {
        const Index r = a.row_ind()[ka];
        if (mark[static_cast<std::size_t>(r)] != j) {
          mark[static_cast<std::size_t>(r)] = j;
          pattern.push_back(r);
        }
      }
    }
    if (include_diagonal && mark[static_cast<std::size_t>(j)] != j) {
      mark[static_cast<std::size_t>(j)] = j;
      pattern.push_back(j);
    }
    std::sort(pattern.begin(), pattern.end());
    row_ind.insert(row_ind.end(), pattern.begin(), pattern.end());
    col_ptr[static_cast<std::size_t>(j) + 1] =
        static_cast<Index>(row_ind.size());
  }
  c_ = SparseMatrix::from_pattern(a_rows_, b_cols_, std::move(col_ptr),
                                  std::move(row_ind));
  work_.assign(static_cast<std::size_t>(a_rows_), 0.0);
  multiply(a, b);
}

const SparseMatrix& CachedSpGemm::multiply(const SparseMatrix& a,
                                           const SparseMatrix& b) {
  BBS_REQUIRE(a.rows() == a_rows_ && a.cols() == a_cols_ &&
                  b.rows() == a_cols_ && b.cols() == b_cols_ &&
                  a.col_ptr() == a_col_ptr_ && a.row_ind() == a_row_ind_ &&
                  b.col_ptr() == b_col_ptr_ && b.row_ind() == b_row_ind_,
              "CachedSpGemm::multiply: sparsity pattern differs from the "
              "cached symbolic analysis");
  const std::vector<Index>& cp = c_.col_ptr();
  const std::vector<Index>& ci = c_.row_ind();
  std::vector<double>& cv = c_.values();
  for (Index j = 0; j < b_cols_; ++j) {
    for (Index k = cp[j]; k < cp[j + 1]; ++k) {
      work_[static_cast<std::size_t>(ci[k])] = 0.0;
    }
    for (Index kb = b.col_ptr()[j]; kb < b.col_ptr()[j + 1]; ++kb) {
      const Index ca = b.row_ind()[kb];
      const double bv = b.values()[kb];
      if (bv == 0.0) continue;
      for (Index ka = a.col_ptr()[ca]; ka < a.col_ptr()[ca + 1]; ++ka) {
        work_[static_cast<std::size_t>(a.row_ind()[ka])] +=
            a.values()[ka] * bv;
      }
    }
    for (Index k = cp[j]; k < cp[j + 1]; ++k) {
      cv[k] = work_[static_cast<std::size_t>(ci[k])];
    }
  }
  return c_;
}

}  // namespace bbs::linalg
