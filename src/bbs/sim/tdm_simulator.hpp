// Discrete-event simulation of task graphs on a TDM-scheduled multiprocessor.
//
// This is the stand-in for the paper's MPSoC testbed: it executes the *task
// graph itself* (not the dataflow abstraction) under time-division-multiplex
// budget schedulers with FIFO back-pressure, and measures the achieved
// steady-state period. The dataflow model of Section II-C is conservative for
// this execution (EMSOFT'09, ref [10]), so every allocation computed by
// Algorithm 1 must sustain the required period here — the property the
// integration tests check.
//
// Semantics:
//   * Processor p reserves o(p) cycles of scheduler overhead at the start of
//     each replenishment interval rho(p); tasks own disjoint contiguous
//     slices of beta(w) cycles, assigned in (graph, task) order.
//   * A task execution starts when the previous execution of the same task
//     has finished, every input buffer holds a filled container and every
//     output buffer a free one; it then needs chi(w) (or a caller-scaled /
//     randomised amount <= chi(w)) cycles *of its own slice*.
//   * Containers are consumed/released at the end of an execution.
//
// Task graphs never exchange tokens, and budget schedulers isolate them in
// time, so graphs are simulated independently but with globally assigned
// slice offsets.
#pragma once

#include <cstdint>
#include <vector>

#include "bbs/model/configuration.hpp"

namespace bbs::sim {

using linalg::Index;
using linalg::Vector;

/// How each task's budget is laid out within the TDM wheel. The dataflow
/// model of the paper only assumes "beta(w) cycles in every replenishment
/// interval" — any placement is a valid budget scheduler — so analyses must
/// be conservative for all of these (the integration tests check exactly
/// that).
enum class SlicePlacement {
  /// One contiguous slice per task (classic TDM).
  kContiguous,
  /// The budget is split into granularity-sized quanta dealt round-robin
  /// across the wheel (slotted TDM / weighted round-robin).
  kScattered,
};

struct SimOptions {
  /// Number of executions simulated per task.
  int iterations = 256;
  /// Executions excluded from the period measurement (transient).
  int warmup = 64;
  /// Actual execution time = scale * chi(w); must be in (0, 1].
  double execution_time_scale = 1.0;
  /// When true, each execution draws a uniform time in
  /// [0.25, execution_time_scale] * chi(w) (data-dependent workloads).
  bool randomise_execution_times = false;
  std::uint64_t seed = 1;
  SlicePlacement placement = SlicePlacement::kContiguous;
  /// Quantum (cycles) for kScattered; <= 0 uses the platform granularity.
  double quantum = 0.0;
};

struct TaskTrace {
  Vector start;   ///< start time of the k-th execution
  Vector finish;  ///< completion time of the k-th execution
};

struct GraphSimResult {
  bool deadlocked = false;
  std::vector<TaskTrace> tasks;
  /// Average steady-state period of the graph's sink task (start-to-start
  /// over the post-warmup window); 0 if not measurable.
  double measured_period = 0.0;
};

struct SimResult {
  std::vector<GraphSimResult> graphs;
};

/// Simulates every task graph of the configuration under the given budgets
/// (cycles; one vector per graph) and buffer capacities (containers; one
/// vector per graph). Throws ModelError if the budgets do not fit the TDM
/// wheels or a capacity is invalid.
SimResult simulate_tdm(const model::Configuration& config,
                       const std::vector<Vector>& budgets,
                       const std::vector<std::vector<Index>>& capacities,
                       const SimOptions& options = {});

/// Computes the completion time of `work` cycles of slice time for a slice
/// [slice_offset, slice_offset + slice_length) within a TDM wheel of length
/// `wheel`, starting at absolute time `t`. Exposed for unit testing.
double tdm_advance(double t, double work, double wheel, double slice_offset,
                   double slice_length);

/// One service window within a TDM wheel: [start, start + length).
struct SliceWindow {
  double start = 0.0;
  double length = 0.0;
};

/// Generalisation of tdm_advance to a set of disjoint windows per wheel
/// (sorted by start). Exposed for unit testing.
double tdm_advance_windows(double t, double work, double wheel,
                           const std::vector<SliceWindow>& windows);

}  // namespace bbs::sim
