#include "bbs/sim/trace.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "bbs/common/assert.hpp"
#include "bbs/common/strings.hpp"

namespace bbs::sim {

double measured_period(const TaskTrace& trace, int warmup) {
  const auto n = trace.start.size();
  BBS_REQUIRE(warmup >= 0 && static_cast<std::size_t>(warmup) + 1 < n,
              "measured_period: warmup leaves no window");
  return (trace.start[n - 1] - trace.start[static_cast<std::size_t>(warmup)]) /
         static_cast<double>(n - 1 - static_cast<std::size_t>(warmup));
}

double period_jitter(const TaskTrace& trace, int warmup) {
  const auto n = trace.start.size();
  BBS_REQUIRE(warmup >= 0 && static_cast<std::size_t>(warmup) + 1 < n,
              "period_jitter: warmup leaves no window");
  const double avg = measured_period(trace, warmup);
  double jitter = 0.0;
  for (std::size_t k = static_cast<std::size_t>(warmup) + 1; k < n; ++k) {
    jitter = std::max(jitter,
                      std::abs((trace.start[k] - trace.start[k - 1]) - avg));
  }
  return jitter;
}

double busy_fraction(const TaskTrace& trace) {
  if (trace.start.empty()) return 0.0;
  const double span = trace.finish.back();
  if (span <= 0.0) return 0.0;
  double busy = 0.0;
  for (std::size_t k = 0; k < trace.start.size(); ++k) {
    busy += trace.finish[k] - trace.start[k];
  }
  return busy / span;
}

std::string to_csv(const GraphSimResult& result) {
  std::ostringstream os;
  os << "task,k,start,finish\n";
  for (std::size_t t = 0; t < result.tasks.size(); ++t) {
    const TaskTrace& tt = result.tasks[t];
    for (std::size_t k = 0; k < tt.start.size(); ++k) {
      os << t << "," << k << "," << format_double(tt.start[k], 6) << ","
         << format_double(tt.finish[k], 6) << "\n";
    }
  }
  return os.str();
}

}  // namespace bbs::sim
