// Analysis helpers over simulation traces: periods, jitter, utilisation and
// CSV export for offline plotting.
#pragma once

#include <string>

#include "bbs/sim/tdm_simulator.hpp"

namespace bbs::sim {

/// Average start-to-start period of one task over [warmup, end).
double measured_period(const TaskTrace& trace, int warmup);

/// Maximum deviation of start-to-start distances from the average period
/// over [warmup, end) — the jitter of the steady-state schedule.
double period_jitter(const TaskTrace& trace, int warmup);

/// Fraction of wall-clock time the task spends between start and finish
/// (includes slice waiting) over the whole trace.
double busy_fraction(const TaskTrace& trace);

/// Renders a trace as CSV: one line per execution `task,k,start,finish`.
std::string to_csv(const GraphSimResult& result);

}  // namespace bbs::sim
