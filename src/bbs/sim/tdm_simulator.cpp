#include "bbs/sim/tdm_simulator.hpp"

#include <algorithm>
#include <cmath>

#include "bbs/common/assert.hpp"
#include "bbs/common/period.hpp"
#include "bbs/common/rng.hpp"

namespace bbs::sim {

double tdm_advance(double t, double work, double wheel, double slice_offset,
                   double slice_length) {
  BBS_REQUIRE(wheel > 0.0 && slice_length > 0.0 &&
                  slice_offset + slice_length <= wheel + 1e-9,
              "tdm_advance: invalid slice");
  BBS_REQUIRE(work >= 0.0, "tdm_advance: negative work");
  if (work == 0.0) return t;

  // Normalise to the wheel phase of the slice start.
  const double base = std::floor((t - slice_offset) / wheel) * wheel +
                      slice_offset;
  double window_start = base;  // start of the slice window nearest below t
  double remaining = work;
  double now = std::max(t, window_start);

  // First (possibly partial) window.
  if (now < window_start + slice_length) {
    const double available = window_start + slice_length - now;
    if (remaining <= available) return now + remaining;
    remaining -= available;
  }
  // Full windows: skip whole wheels analytically.
  window_start += wheel;
  const double full = std::floor(remaining / slice_length);
  if (full >= 1.0) {
    window_start += full * wheel;
    remaining -= full * slice_length;
    if (remaining == 0.0) {
      // Finished exactly at the end of the last full window.
      return window_start - wheel + slice_length;
    }
  }
  return window_start + remaining;
}

double tdm_advance_windows(double t, double work, double wheel,
                           const std::vector<SliceWindow>& windows) {
  BBS_REQUIRE(!windows.empty(), "tdm_advance_windows: no windows");
  double total = 0.0;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    BBS_REQUIRE(windows[i].length > 0.0 &&
                    windows[i].start + windows[i].length <= wheel + 1e-9,
                "tdm_advance_windows: window outside the wheel");
    if (i > 0) {
      BBS_REQUIRE(windows[i].start >=
                      windows[i - 1].start + windows[i - 1].length - 1e-12,
                  "tdm_advance_windows: windows overlap or are unsorted");
    }
    total += windows[i].length;
  }
  BBS_REQUIRE(work >= 0.0, "tdm_advance_windows: negative work");
  if (work == 0.0) return t;

  double base = std::floor(t / wheel) * wheel;
  double remaining = work;
  bool first_wheel = true;
  // Termination: the first (possibly partial) wheel, one analytic skip of
  // full wheels, then at most two more wheels for the remainder.
  for (int guard = 0; guard < 8; ++guard) {
    for (const SliceWindow& w : windows) {
      const double ws = base + w.start;
      const double we = ws + w.length;
      const double now = std::max(t, ws);
      if (now < we) {
        const double avail = we - now;
        if (remaining <= avail) return now + remaining;
        remaining -= avail;
      }
    }
    base += wheel;
    if (first_wheel) {
      first_wheel = false;
      const double full = std::floor(remaining / total);
      if (full >= 1.0) {
        base += full * wheel;
        remaining -= full * total;
        if (remaining == 0.0) {
          // Finished exactly at the end of the last window of the last
          // full wheel.
          return base - wheel + windows.back().start + windows.back().length;
        }
      }
    }
  }
  throw NumericalError("tdm_advance_windows: did not converge");
}

SimResult simulate_tdm(const model::Configuration& config,
                       const std::vector<Vector>& budgets,
                       const std::vector<std::vector<Index>>& capacities,
                       const SimOptions& options) {
  config.validate();
  BBS_REQUIRE(options.iterations > 0, "simulate_tdm: iterations must be > 0");
  BBS_REQUIRE(options.warmup >= 0 && options.warmup < options.iterations - 1,
              "simulate_tdm: warmup must leave a measurement window");
  BBS_REQUIRE(options.execution_time_scale > 0.0 &&
                  options.execution_time_scale <= 1.0,
              "simulate_tdm: execution_time_scale must be in (0, 1]");
  const Index num_graphs = config.num_task_graphs();
  BBS_REQUIRE(budgets.size() == static_cast<std::size_t>(num_graphs),
              "simulate_tdm: one budget vector per graph");
  BBS_REQUIRE(capacities.size() == static_cast<std::size_t>(num_graphs),
              "simulate_tdm: one capacity vector per graph");

  // --- Global slice assignment ---------------------------------------------
  // Validate budgets and collect the tasks per processor in (graph, task)
  // order.
  struct TaskSlot {
    Index graph;
    Index task;
  };
  std::vector<std::vector<TaskSlot>> per_proc(
      static_cast<std::size_t>(config.num_processors()));
  for (Index gi = 0; gi < num_graphs; ++gi) {
    const model::TaskGraph& tg = config.task_graph(gi);
    const auto g = static_cast<std::size_t>(gi);
    BBS_REQUIRE(budgets[g].size() == static_cast<std::size_t>(tg.num_tasks()),
                "simulate_tdm: budget count mismatch");
    BBS_REQUIRE(capacities[g].size() ==
                    static_cast<std::size_t>(tg.num_buffers()),
                "simulate_tdm: capacity count mismatch");
    for (Index t = 0; t < tg.num_tasks(); ++t) {
      if (!(budgets[g][static_cast<std::size_t>(t)] > 0.0)) {
        throw ModelError("simulate_tdm: task '" + tg.task(t).name +
                         "' has a non-positive budget");
      }
      per_proc[static_cast<std::size_t>(tg.task(t).processor)].push_back(
          TaskSlot{gi, t});
    }
  }

  // windows[g][t]: this task's service windows within its wheel.
  std::vector<std::vector<std::vector<SliceWindow>>> windows(
      static_cast<std::size_t>(num_graphs));
  for (Index gi = 0; gi < num_graphs; ++gi) {
    windows[static_cast<std::size_t>(gi)].resize(static_cast<std::size_t>(
        config.task_graph(gi).num_tasks()));
  }
  for (Index p = 0; p < config.num_processors(); ++p) {
    const model::Processor& proc = config.processor(p);
    const auto& slots = per_proc[static_cast<std::size_t>(p)];
    if (slots.empty()) continue;
    double position = proc.scheduling_overhead;
    if (options.placement == SlicePlacement::kContiguous) {
      for (const TaskSlot& slot : slots) {
        const double beta = budgets[static_cast<std::size_t>(slot.graph)]
                                   [static_cast<std::size_t>(slot.task)];
        windows[static_cast<std::size_t>(slot.graph)]
               [static_cast<std::size_t>(slot.task)]
                   .push_back(SliceWindow{position, beta});
        position += beta;
      }
    } else {
      // Scattered: deal quanta round-robin until every budget is granted.
      const double quantum =
          options.quantum > 0.0
              ? options.quantum
              : static_cast<double>(config.granularity());
      std::vector<double> remaining;
      for (const TaskSlot& slot : slots) {
        remaining.push_back(budgets[static_cast<std::size_t>(slot.graph)]
                                   [static_cast<std::size_t>(slot.task)]);
      }
      bool any = true;
      while (any) {
        any = false;
        for (std::size_t i = 0; i < slots.size(); ++i) {
          if (remaining[i] <= 0.0) continue;
          const double grant = std::min(quantum, remaining[i]);
          windows[static_cast<std::size_t>(slots[i].graph)]
                 [static_cast<std::size_t>(slots[i].task)]
                     .push_back(SliceWindow{position, grant});
          position += grant;
          remaining[i] -= grant;
          any = any || remaining[i] > 0.0;
        }
      }
    }
    if (position > proc.replenishment_interval + 1e-9) {
      throw ModelError("simulate_tdm: budgets overflow the replenishment "
                       "interval of processor '" + proc.name + "'");
    }
  }

  bbs::Rng rng(options.seed);
  SimResult result;
  result.graphs.resize(static_cast<std::size_t>(num_graphs));

  // --- Per-graph simulation --------------------------------------------------
  for (Index gi = 0; gi < num_graphs; ++gi) {
    const auto g = static_cast<std::size_t>(gi);
    const model::TaskGraph& tg = config.task_graph(gi);
    GraphSimResult& out = result.graphs[g];
    const auto nt = static_cast<std::size_t>(tg.num_tasks());

    // Same-iteration dependency DAG: data edges with iota = 0 (producer
    // before consumer) and space edges with gamma - iota = 0 (consumer
    // before producer). A cycle here is a real deadlock.
    std::vector<std::vector<Index>> same_k_succ(nt);
    std::vector<Index> indeg(nt, 0);
    bool invalid = false;
    for (Index b = 0; b < tg.num_buffers(); ++b) {
      const model::Buffer& buf = tg.buffer(b);
      const Index gamma = capacities[g][static_cast<std::size_t>(b)];
      if (gamma < 1 || gamma < buf.initial_fill) {
        throw ModelError("simulate_tdm: invalid capacity for buffer '" +
                         buf.name + "'");
      }
      if (buf.initial_fill == 0) {
        same_k_succ[static_cast<std::size_t>(buf.producer)].push_back(
            buf.consumer);
        ++indeg[static_cast<std::size_t>(buf.consumer)];
      }
      if (gamma - buf.initial_fill == 0) {
        same_k_succ[static_cast<std::size_t>(buf.consumer)].push_back(
            buf.producer);
        ++indeg[static_cast<std::size_t>(buf.producer)];
      }
    }
    std::vector<Index> topo;
    {
      std::vector<Index> stack;
      for (std::size_t t = 0; t < nt; ++t)
        if (indeg[t] == 0) stack.push_back(static_cast<Index>(t));
      while (!stack.empty()) {
        const Index t = stack.back();
        stack.pop_back();
        topo.push_back(t);
        for (Index s : same_k_succ[static_cast<std::size_t>(t)]) {
          if (--indeg[static_cast<std::size_t>(s)] == 0) stack.push_back(s);
        }
      }
      if (topo.size() != nt) {
        out.deadlocked = true;
        invalid = true;
      }
    }
    if (invalid) continue;

    out.tasks.assign(nt, TaskTrace{});
    for (auto& tt : out.tasks) {
      tt.start.assign(static_cast<std::size_t>(options.iterations), 0.0);
      tt.finish.assign(static_cast<std::size_t>(options.iterations), 0.0);
    }

    // Execution-time draw for the k-th execution of task t.
    const auto exec_time = [&](const model::Task& task) {
      if (options.randomise_execution_times) {
        return task.wcet *
               rng.next_real(0.25 * options.execution_time_scale,
                             options.execution_time_scale);
      }
      return task.wcet * options.execution_time_scale;
    };

    for (int k = 0; k < options.iterations; ++k) {
      for (Index t : topo) {
        const auto ti = static_cast<std::size_t>(t);
        const model::Task& task = tg.task(t);
        double ready = 0.0;
        // Sequential task: previous execution must have finished.
        if (k > 0) {
          ready = out.tasks[ti].finish[static_cast<std::size_t>(k - 1)];
        }
        for (Index b = 0; b < tg.num_buffers(); ++b) {
          const model::Buffer& buf = tg.buffer(b);
          const Index gamma = capacities[g][static_cast<std::size_t>(b)];
          if (buf.consumer == t) {
            // Need the (k+1)-th filled container: produced by execution
            // k - iota of the producer (0-based), or initially present.
            const int dep = k - static_cast<int>(buf.initial_fill);
            if (dep >= 0) {
              ready = std::max(
                  ready,
                  out.tasks[static_cast<std::size_t>(buf.producer)]
                      .finish[static_cast<std::size_t>(dep)]);
            }
          }
          if (buf.producer == t) {
            // Need a free container: released by execution
            // k - (gamma - iota) of the consumer, or initially free.
            const int dep = k - static_cast<int>(gamma - buf.initial_fill);
            if (dep >= 0) {
              ready = std::max(
                  ready,
                  out.tasks[static_cast<std::size_t>(buf.consumer)]
                      .finish[static_cast<std::size_t>(dep)]);
            }
          }
        }
        const model::Processor& proc = config.processor(task.processor);
        const double finish = tdm_advance_windows(
            ready, exec_time(task), proc.replenishment_interval,
            windows[g][ti]);
        out.tasks[ti].start[static_cast<std::size_t>(k)] = ready;
        out.tasks[ti].finish[static_cast<std::size_t>(k)] = finish;
      }
    }

    // Steady-state period via periodicity detection on the post-warmup
    // window (see bbs/common/period.hpp); fall back is a windowed average.
    std::vector<std::vector<double>> window;
    for (int k = options.warmup; k < options.iterations; ++k) {
      std::vector<double> row(nt);
      for (std::size_t t = 0; t < nt; ++t) {
        row[t] = out.tasks[t].start[static_cast<std::size_t>(k)];
      }
      window.push_back(std::move(row));
    }
    out.measured_period = estimate_asymptotic_period(window);
  }
  return result;
}

}  // namespace bbs::sim
