#include "bbs/core/binding.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "bbs/common/assert.hpp"

namespace bbs::core {

namespace {

/// Applies a flat binding vector (task-major across graphs) to a copy of
/// the configuration.
model::Configuration with_binding(const model::Configuration& config,
                                  const std::vector<Index>& flat) {
  model::Configuration out(config.granularity());
  for (Index p = 0; p < config.num_processors(); ++p) {
    out.add_processor(config.processor(p).name,
                      config.processor(p).replenishment_interval,
                      config.processor(p).scheduling_overhead);
  }
  for (Index m = 0; m < config.num_memories(); ++m) {
    out.add_memory(config.memory(m).name, config.memory(m).capacity);
  }
  std::size_t next = 0;
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    const model::TaskGraph& tg = config.task_graph(gi);
    model::TaskGraph copy(tg.name(), tg.required_period());
    for (Index t = 0; t < tg.num_tasks(); ++t) {
      const model::Task& task = tg.task(t);
      copy.add_task(task.name, flat[next++], task.wcet, task.budget_weight);
    }
    for (Index b = 0; b < tg.num_buffers(); ++b) {
      const model::Buffer& buf = tg.buffer(b);
      const Index id =
          copy.add_buffer(buf.name, buf.producer, buf.consumer, buf.memory,
                          buf.container_size, buf.initial_fill,
                          buf.size_weight);
      if (buf.max_capacity != -1) copy.set_max_capacity(id, buf.max_capacity);
    }
    out.add_task_graph(std::move(copy));
  }
  return out;
}

struct Candidate {
  bool feasible = false;
  double cost = std::numeric_limits<double>::infinity();
  MappingResult mapping;
};

Candidate evaluate(const model::Configuration& config,
                   const std::vector<Index>& flat,
                   const MappingOptions& options, int& evaluated) {
  ++evaluated;
  Candidate c;
  c.mapping = compute_budgets_and_buffers(with_binding(config, flat), options);
  c.feasible = c.mapping.feasible();
  if (c.feasible) c.cost = c.mapping.objective_continuous;
  return c;
}

std::vector<std::vector<Index>> unflatten(const model::Configuration& config,
                                          const std::vector<Index>& flat) {
  std::vector<std::vector<Index>> out;
  std::size_t next = 0;
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    const model::TaskGraph& tg = config.task_graph(gi);
    std::vector<Index> row;
    for (Index t = 0; t < tg.num_tasks(); ++t) row.push_back(flat[next++]);
    out.push_back(std::move(row));
  }
  return out;
}

/// Load-balanced greedy seed: tasks in decreasing WCET order go to the
/// processor with the least accumulated normalised load.
std::vector<Index> greedy_seed(const model::Configuration& config) {
  struct Item {
    std::size_t flat_index;
    double demand;  // wcet / mu: rough rate requirement
  };
  std::vector<Item> items;
  std::size_t next = 0;
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    const model::TaskGraph& tg = config.task_graph(gi);
    for (Index t = 0; t < tg.num_tasks(); ++t) {
      items.push_back(Item{next++, tg.task(t).wcet / tg.required_period()});
    }
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.demand > b.demand; });

  std::vector<Index> flat(next, 0);
  std::vector<double> load(static_cast<std::size_t>(config.num_processors()),
                           0.0);
  for (const Item& item : items) {
    std::size_t best = 0;
    for (std::size_t p = 1; p < load.size(); ++p) {
      if (load[p] < load[best]) best = p;
    }
    flat[item.flat_index] = static_cast<Index>(best);
    load[best] += item.demand;
  }
  return flat;
}

}  // namespace

std::optional<BindingResult> bind_and_solve(const model::Configuration& config,
                                            const BindingOptions& options) {
  config.validate();
  const auto num_tasks = static_cast<std::size_t>(config.total_tasks());
  const auto num_procs = static_cast<std::size_t>(config.num_processors());
  BBS_REQUIRE(num_procs > 0, "bind_and_solve: no processors");
  BBS_REQUIRE(num_tasks > 0, "bind_and_solve: no tasks");

  int evaluated = 0;
  std::vector<Index> best_flat;
  Candidate best;

  if (options.strategy == BindingStrategy::kExhaustive) {
    const double total = std::pow(static_cast<double>(num_procs),
                                  static_cast<double>(num_tasks));
    if (total > static_cast<double>(options.max_assignments)) {
      throw ModelError("bind_and_solve: exhaustive search space too large; "
                       "use kGreedyLocalSearch or raise max_assignments");
    }
    std::vector<Index> flat(num_tasks, 0);
    bool done = false;
    while (!done) {
      const Candidate c = evaluate(config, flat, options.mapping, evaluated);
      if (c.feasible && c.cost < best.cost) {
        best = c;
        best_flat = flat;
      }
      // Odometer.
      done = true;
      for (std::size_t i = 0; i < num_tasks; ++i) {
        if (flat[i] + 1 < static_cast<Index>(num_procs)) {
          ++flat[i];
          for (std::size_t j = 0; j < i; ++j) flat[j] = 0;
          done = false;
          break;
        }
      }
    }
  } else {
    std::vector<Index> flat = greedy_seed(config);
    Candidate current = evaluate(config, flat, options.mapping, evaluated);
    if (current.feasible) {
      best = current;
      best_flat = flat;
    }
    for (int round = 0; round < options.max_rounds; ++round) {
      bool improved = false;
      for (std::size_t i = 0; i < num_tasks; ++i) {
        const Index original = flat[i];
        for (Index p = 0; p < static_cast<Index>(num_procs); ++p) {
          if (p == original) continue;
          flat[i] = p;
          const Candidate c =
              evaluate(config, flat, options.mapping, evaluated);
          // Accept moves that restore feasibility or reduce cost.
          const bool better =
              (c.feasible && !current.feasible) ||
              (c.feasible && current.feasible &&
               c.cost < current.cost - 1e-9 * (1.0 + current.cost));
          if (better) {
            current = c;
            improved = true;
            if (c.cost < best.cost || best_flat.empty()) {
              best = c;
              best_flat = flat;
            }
            break;  // keep the move, rescan from the next task
          }
          flat[i] = original;
        }
      }
      if (!improved) break;
    }
  }

  if (best_flat.empty()) return std::nullopt;
  BindingResult out;
  out.processors = unflatten(config, best_flat);
  out.mapping = std::move(best.mapping);
  out.evaluated = evaluated;
  return out;
}

}  // namespace bbs::core
