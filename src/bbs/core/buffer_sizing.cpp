#include "bbs/core/buffer_sizing.hpp"

#include <algorithm>
#include <limits>

#include "bbs/common/assert.hpp"
#include "bbs/dataflow/cycle_ratio.hpp"

namespace bbs::core {

namespace {

/// Remaining container head-room of buffer b under its cap and its memory's
/// capacity, given current capacities of all buffers in that memory.
bool can_grow(const model::Configuration& config, const model::TaskGraph& tg,
              Index buffer, const std::vector<Index>& capacities) {
  const model::Buffer& buf = tg.buffer(buffer);
  if (buf.max_capacity != -1 &&
      capacities[static_cast<std::size_t>(buffer)] >= buf.max_capacity) {
    return false;
  }
  const double mem_cap = config.memory(buf.memory).capacity;
  if (mem_cap < 0.0) return true;  // unconstrained
  double used = 0.0;
  for (Index b = 0; b < tg.num_buffers(); ++b) {
    if (tg.buffer(b).memory == buf.memory) {
      used += static_cast<double>(capacities[static_cast<std::size_t>(b)]) *
              static_cast<double>(tg.buffer(b).container_size);
    }
  }
  return used + static_cast<double>(buf.container_size) <= mem_cap + 1e-9;
}

}  // namespace

std::optional<BufferSizingResult> size_buffers_for_budgets(
    const model::Configuration& config, Index graph_index,
    const Vector& budgets) {
  config.validate();
  const model::TaskGraph& tg = config.task_graph(graph_index);
  BBS_REQUIRE(budgets.size() == static_cast<std::size_t>(tg.num_tasks()),
              "size_buffers_for_budgets: one budget per task required");
  const double mu = tg.required_period();

  BufferSizingResult result;
  result.capacities.assign(static_cast<std::size_t>(tg.num_buffers()), 1);
  for (Index b = 0; b < tg.num_buffers(); ++b) {
    result.capacities[static_cast<std::size_t>(b)] =
        std::max<Index>(1, tg.buffer(b).initial_fill);
  }

  // Map space-queue ids of the SRDF model back to buffer indices once; the
  // model structure does not change across increments.
  SrdfModel m = build_srdf(config, graph_index, budgets, result.capacities);
  std::vector<Index> space_queue_to_buffer(
      static_cast<std::size_t>(m.graph.num_queues()), -1);
  for (Index b = 0; b < tg.num_buffers(); ++b) {
    space_queue_to_buffer[static_cast<std::size_t>(
        m.space_queue[static_cast<std::size_t>(b)])] = b;
  }

  // Upper bound on increments: each one adds a container, and the total is
  // bounded by what caps/memories admit; guard against cycles not fixable
  // by buffers (e.g. a too-small budget) via the no-candidate exit.
  while (true) {
    const dataflow::CriticalCycle crit = dataflow::critical_cycle(m.graph);
    result.mcr = crit.ratio;
    if (crit.ratio <= mu * (1.0 + 1e-12) + 1e-12) {
      return result;  // feasible
    }
    // Candidate buffers: space queues on the critical cycle with head-room.
    Index best = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (Index qid : crit.queues) {
      const Index b = space_queue_to_buffer[static_cast<std::size_t>(qid)];
      if (b < 0) continue;
      if (!can_grow(config, tg, b, result.capacities)) continue;
      const double cost = tg.buffer(b).size_weight *
                          static_cast<double>(tg.buffer(b).container_size);
      if (cost < best_cost) {
        best_cost = cost;
        best = b;
      }
    }
    if (best < 0) {
      // The bottleneck cycle contains no growable buffer: the budgets (or
      // the caps/memories) make the requirement unreachable.
      return std::nullopt;
    }
    ++result.capacities[static_cast<std::size_t>(best)];
    ++result.increments;
    m.graph.set_initial_tokens(
        m.space_queue[static_cast<std::size_t>(best)],
        result.capacities[static_cast<std::size_t>(best)] -
            tg.buffer(best).initial_fill);
  }
}

}  // namespace bbs::core
