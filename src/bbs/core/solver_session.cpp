#include "bbs/core/solver_session.hpp"

#include "bbs/common/assert.hpp"

namespace bbs::core {

SolverSession::SolverSession(const model::Configuration& config,
                             SessionOptions options)
    : options_(std::move(options)),
      config_(config),
      program_(build_algorithm1(config_, options_.build)),
      ipm_(options_.mapping.ipm) {}

void SolverSession::set_buffer_cap(Index graph, Index buffer, Index cap) {
  BBS_REQUIRE(cap >= 1, "SolverSession::set_buffer_cap: cap must be >= 1");
  config_.mutable_task_graph(graph).set_max_capacity(buffer, cap);
  program_.refresh_buffer_cap(config_, graph, buffer);
}

void SolverSession::set_all_buffer_caps(Index graph, Index cap) {
  const Index num_buffers = config_.task_graph(graph).num_buffers();
  for (Index b = 0; b < num_buffers; ++b) {
    set_buffer_cap(graph, b, cap);
  }
}

void SolverSession::set_required_period(Index graph, double period) {
  config_.mutable_task_graph(graph).set_required_period(period);
  program_.refresh_required_period(config_, graph);
}

void SolverSession::set_fixed_budgets(Index graph, const Vector& budgets) {
  program_.refresh_fixed_budgets(config_, graph, budgets);
}

void SolverSession::set_fixed_deltas(Index graph, const Vector& deltas) {
  program_.refresh_fixed_deltas(config_, graph, deltas);
}

void SolverSession::set_solve_control(const SolveControl& control) {
  solver::SolverOptions opts = options_.mapping.ipm;
  opts.time_limit_ms = control.time_limit_ms;
  opts.deadline = control.deadline;
  opts.cancel = control.cancel;
  opts.fail_at_iteration = control.fail_at_iteration;
  opts.fail_only_first_attempt = control.fail_only_first_attempt;
  opts.trace_sink = control.trace_sink;
  ipm_ = solver::IpmSolver(opts);
}

void SolverSession::clear_solve_control() {
  ipm_ = solver::IpmSolver(options_.mapping.ipm);
}

double SolverSession::seed_merit(const Snapshot& snap) const {
  // Distance of the stored point from a tau = 1 embedding solution of the
  // *current* data: the primal and dual residuals the solver would start
  // from. Two sparse mat-vecs — negligible next to one KKT factorisation.
  return program_.problem.primal_residual(snap.x, snap.s) +
         program_.problem.dual_residual(snap.z);
}

SeedSide SolverSession::select_seed() {
  if (!options_.mapping.ipm.warm_start) return SeedSide::kCold;
  if (!last_feasible_.valid && !last_infeasible_.valid) {
    return SeedSide::kCold;
  }
  // One-sided default: the workspace already holds the last optimum; only
  // the infeasible-side snapshot needs installing explicitly, and only when
  // it is strictly the better start for the data now in the program. An
  // infeasibility certificate lives at tau -> 0, so on nearby-feasible data
  // the feasible optimum wins this comparison and nothing changes.
  if (options_.two_sided_warm_seeds && last_infeasible_.valid) {
    const double infeasible_merit = seed_merit(last_infeasible_);
    if (!last_feasible_.valid || infeasible_merit < seed_merit(last_feasible_)) {
      workspace_.seed_warm(last_infeasible_.x, last_infeasible_.s,
                           last_infeasible_.z);
      warm_slot_is_feasible_ = false;
      return SeedSide::kInfeasible;
    }
  }
  if (!last_feasible_.valid) return SeedSide::kCold;
  // The workspace auto-stores every optimum, so the slot already holds the
  // feasible snapshot unless an infeasible-side seed displaced it.
  if (!warm_slot_is_feasible_) {
    workspace_.seed_warm(last_feasible_.x, last_feasible_.s, last_feasible_.z);
    warm_slot_is_feasible_ = true;
  }
  return SeedSide::kFeasible;
}

MappingResult SolverSession::solve() {
  const SeedSide side = select_seed();
  const solver::SolveResult sol = ipm_.solve(program_.problem, workspace_);

  // Stock the matching side for the next probe. Only optimal solves and
  // clean infeasibility certificates are starting points; stalls and
  // numerical failures refresh neither snapshot.
  if (sol.status == solver::SolveStatus::kOptimal) {
    last_feasible_.valid = true;
    last_feasible_.x = sol.x;
    last_feasible_.s = sol.s;
    last_feasible_.z = sol.z;
    warm_slot_is_feasible_ = true;  // the workspace auto-stored this optimum
    ++seed_stats_.last_feasible_updates;
  } else if (sol.status == solver::SolveStatus::kPrimalInfeasible ||
             sol.status == solver::SolveStatus::kDualInfeasible) {
    last_infeasible_.valid = true;
    last_infeasible_.x = sol.x;
    last_infeasible_.s = sol.s;
    last_infeasible_.z = sol.z;
    ++seed_stats_.last_infeasible_updates;
  }
  if (sol.recovery_attempts > 0 &&
      sol.status != solver::SolveStatus::kOptimal) {
    // The recovery ladder dropped the workspace's warm slot and nothing
    // refilled it; force select_seed() to reinstall a snapshot next time
    // instead of trusting the (now empty) slot.
    warm_slot_is_feasible_ = false;
  }

  seed_stats_.last_iterations = sol.iterations;
  if (!sol.warm_started) {
    ++seed_stats_.cold;
    seed_stats_.iterations_cold += sol.iterations;
  } else if (side == SeedSide::kInfeasible) {
    ++seed_stats_.seeded_infeasible;
    seed_stats_.iterations_seeded_infeasible += sol.iterations;
  } else {
    ++seed_stats_.seeded_feasible;
    seed_stats_.iterations_seeded_feasible += sol.iterations;
  }

  return mapping_from_solution(config_, program_, sol, options_.mapping);
}

}  // namespace bbs::core
