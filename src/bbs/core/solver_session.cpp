#include "bbs/core/solver_session.hpp"

#include "bbs/common/assert.hpp"

namespace bbs::core {

SolverSession::SolverSession(const model::Configuration& config,
                             SessionOptions options)
    : options_(std::move(options)),
      config_(config),
      program_(build_algorithm1(config_, options_.build)),
      ipm_(options_.mapping.ipm) {}

void SolverSession::set_buffer_cap(Index graph, Index buffer, Index cap) {
  BBS_REQUIRE(cap >= 1, "SolverSession::set_buffer_cap: cap must be >= 1");
  config_.mutable_task_graph(graph).set_max_capacity(buffer, cap);
  program_.refresh_buffer_cap(config_, graph, buffer);
}

void SolverSession::set_all_buffer_caps(Index graph, Index cap) {
  const Index num_buffers = config_.task_graph(graph).num_buffers();
  for (Index b = 0; b < num_buffers; ++b) {
    set_buffer_cap(graph, b, cap);
  }
}

void SolverSession::set_required_period(Index graph, double period) {
  config_.mutable_task_graph(graph).set_required_period(period);
  program_.refresh_required_period(config_, graph);
}

void SolverSession::set_fixed_budgets(Index graph, const Vector& budgets) {
  program_.refresh_fixed_budgets(config_, graph, budgets);
}

void SolverSession::set_fixed_deltas(Index graph, const Vector& deltas) {
  program_.refresh_fixed_deltas(config_, graph, deltas);
}

MappingResult SolverSession::solve() {
  const solver::SolveResult sol = ipm_.solve(program_.problem, workspace_);
  return mapping_from_solution(config_, program_, sol, options_.mapping);
}

}  // namespace bbs::core
