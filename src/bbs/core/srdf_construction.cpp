#include "bbs/core/srdf_construction.hpp"

#include <string>

#include "bbs/common/assert.hpp"

namespace bbs::core {

namespace {

SrdfModel build_common(const model::Configuration& config, Index graph_index,
                       const Vector* budgets,
                       const std::vector<Index>* capacities) {
  const model::TaskGraph& tg = config.task_graph(graph_index);
  SrdfModel m;
  const Index nt = tg.num_tasks();
  const Index nb = tg.num_buffers();
  m.wait_actor.resize(static_cast<std::size_t>(nt));
  m.exec_actor.resize(static_cast<std::size_t>(nt));
  m.wait_queue.resize(static_cast<std::size_t>(nt));
  m.self_queue.resize(static_cast<std::size_t>(nt));
  m.data_queue.resize(static_cast<std::size_t>(nb));
  m.space_queue.resize(static_cast<std::size_t>(nb));

  for (Index t = 0; t < nt; ++t) {
    const model::Task& task = tg.task(t);
    const model::Processor& proc = config.processor(task.processor);
    double rho_wait = 0.0;
    double rho_exec = 0.0;
    if (budgets != nullptr) {
      const double beta = (*budgets)[static_cast<std::size_t>(t)];
      if (!(beta > 0.0) || beta > proc.replenishment_interval) {
        throw ModelError("build_srdf: budget of task '" + task.name +
                         "' outside (0, replenishment interval]");
      }
      rho_wait = proc.replenishment_interval - beta;
      rho_exec = proc.replenishment_interval * task.wcet / beta;
    }
    m.wait_actor[static_cast<std::size_t>(t)] =
        m.graph.add_actor(task.name + ".wait", rho_wait);
    m.exec_actor[static_cast<std::size_t>(t)] =
        m.graph.add_actor(task.name + ".exec", rho_exec);
    m.wait_queue[static_cast<std::size_t>(t)] = m.graph.add_queue(
        m.wait_actor[static_cast<std::size_t>(t)],
        m.exec_actor[static_cast<std::size_t>(t)], 0, task.name + ".w2e");
    m.self_queue[static_cast<std::size_t>(t)] = m.graph.add_queue(
        m.exec_actor[static_cast<std::size_t>(t)],
        m.exec_actor[static_cast<std::size_t>(t)], 1, task.name + ".self");
  }

  for (Index b = 0; b < nb; ++b) {
    const model::Buffer& buf = tg.buffer(b);
    Index space_tokens = 0;
    if (capacities != nullptr) {
      const Index gamma = (*capacities)[static_cast<std::size_t>(b)];
      if (gamma < 1 || gamma < buf.initial_fill) {
        throw ModelError("build_srdf: capacity of buffer '" + buf.name +
                         "' must be >= 1 and >= the initial fill");
      }
      space_tokens = gamma - buf.initial_fill;
    }
    m.data_queue[static_cast<std::size_t>(b)] = m.graph.add_queue(
        m.exec_actor[static_cast<std::size_t>(buf.producer)],
        m.wait_actor[static_cast<std::size_t>(buf.consumer)],
        buf.initial_fill, buf.name + ".data");
    m.space_queue[static_cast<std::size_t>(b)] = m.graph.add_queue(
        m.exec_actor[static_cast<std::size_t>(buf.consumer)],
        m.wait_actor[static_cast<std::size_t>(buf.producer)], space_tokens,
        buf.name + ".space");
  }
  return m;
}

}  // namespace

SrdfModel build_srdf(const model::Configuration& config, Index graph_index,
                     const Vector& budgets,
                     const std::vector<Index>& capacities) {
  const model::TaskGraph& tg = config.task_graph(graph_index);
  BBS_REQUIRE(budgets.size() == static_cast<std::size_t>(tg.num_tasks()),
              "build_srdf: one budget per task required");
  BBS_REQUIRE(capacities.size() == static_cast<std::size_t>(tg.num_buffers()),
              "build_srdf: one capacity per buffer required");
  return build_common(config, graph_index, &budgets, &capacities);
}

SrdfModel build_srdf_skeleton(const model::Configuration& config,
                              Index graph_index) {
  return build_common(config, graph_index, nullptr, nullptr);
}

}  // namespace bbs::core
