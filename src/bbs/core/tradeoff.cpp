#include "bbs/core/tradeoff.hpp"

#include <algorithm>
#include <cmath>

#include "bbs/common/assert.hpp"
#include "bbs/common/scope_guard.hpp"

namespace bbs::core {

Vector TradeoffSweep::budget_deltas() const {
  Vector deltas;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i - 1].feasible && points[i].feasible) {
      deltas.push_back(points[i - 1].total_budget_continuous -
                       points[i].total_budget_continuous);
    }
  }
  return deltas;
}

TradeoffSweep sweep_max_capacity(model::Configuration& config,
                                 Index graph_index, Index cap_lo, Index cap_hi,
                                 const MappingOptions& options,
                                 const TradeoffPointCallback& on_point) {
  BBS_REQUIRE(cap_lo >= 1 && cap_hi >= cap_lo,
              "sweep_max_capacity: need 1 <= cap_lo <= cap_hi");
  model::TaskGraph& tg = config.mutable_task_graph(graph_index);

  // The caller's caps are mutated only long enough to build the session
  // program (the cap rows must exist), and restored on *every* exit path —
  // a solve or callback throwing mid-sweep must not leave the caller's
  // configuration altered.
  std::vector<Index> original_caps(static_cast<std::size_t>(tg.num_buffers()));
  for (Index b = 0; b < tg.num_buffers(); ++b) {
    original_caps[static_cast<std::size_t>(b)] = tg.buffer(b).max_capacity;
  }
  const auto restore_caps = make_scope_guard([&] {
    for (Index b = 0; b < tg.num_buffers(); ++b) {
      tg.set_max_capacity(b, original_caps[static_cast<std::size_t>(b)]);
    }
  });
  for (Index b = 0; b < tg.num_buffers(); ++b) {
    tg.set_max_capacity(b, cap_lo);
  }

  // One session for the whole sweep: built once, each step rewrites the cap
  // rows in place and warm-starts from the previous point.
  SessionOptions session_options;
  session_options.mapping = options;
  SolverSession session(config, session_options);
  return sweep_max_capacity(session, graph_index, cap_lo, cap_hi, on_point);
}

TradeoffSweep sweep_max_capacity(SolverSession& session, Index graph_index,
                                 Index cap_lo, Index cap_hi,
                                 const TradeoffPointCallback& on_point) {
  BBS_REQUIRE(cap_lo >= 1 && cap_hi >= cap_lo,
              "sweep_max_capacity: need 1 <= cap_lo <= cap_hi");
  TradeoffSweep sweep;
  for (Index cap = cap_lo; cap <= cap_hi; ++cap) {
    session.set_all_buffer_caps(graph_index, cap);
    const MappingResult result = session.solve();
    throw_if_interrupted(result);

    TradeoffPoint point;
    point.max_capacity = cap;
    point.feasible = result.feasible();
    if (point.feasible) {
      const MappedGraph& mg =
          result.graphs[static_cast<std::size_t>(graph_index)];
      for (const TaskAllocation& t : mg.tasks) {
        point.budgets_continuous.push_back(t.budget_continuous);
        point.budgets.push_back(t.budget);
        point.total_budget_continuous += t.budget_continuous;
      }
      for (const BufferAllocation& b : mg.buffers) {
        point.capacities.push_back(b.capacity);
      }
    }
    if (on_point) on_point(point);
    sweep.points.push_back(std::move(point));
  }
  return sweep;
}

std::optional<MinimalPeriodResult> minimal_feasible_period(
    model::Configuration& config, Index graph_index, double period_hi,
    double rel_tol, const MappingOptions& options) {
  BBS_REQUIRE(period_hi > 0.0,
              "minimal_feasible_period: period_hi must be positive");
  BBS_REQUIRE(rel_tol > 0.0 && rel_tol < 1.0,
              "minimal_feasible_period: rel_tol must be in (0, 1)");

  // The session owns a configuration copy, so the caller's configuration is
  // never touched; every probe rewrites the period-dependent entries in
  // place and warm-starts from the last feasible point. Probes are pure
  // feasibility queries — the MCR verification pass runs once, on the
  // mapping actually returned.
  SessionOptions session_options;
  session_options.mapping = options;
  session_options.mapping.verify = false;
  SolverSession session(config, session_options);
  return minimal_feasible_period(session, graph_index, period_hi, rel_tol,
                                 options.verify);
}

std::optional<MinimalPeriodResult> minimal_feasible_period(
    SolverSession& session, Index graph_index, double period_hi,
    double rel_tol, bool verify_result) {
  BBS_REQUIRE(period_hi > 0.0,
              "minimal_feasible_period: period_hi must be positive");
  BBS_REQUIRE(rel_tol > 0.0 && rel_tol < 1.0,
              "minimal_feasible_period: rel_tol must be in (0, 1)");

  const auto solve_at = [&](double period) {
    session.set_required_period(graph_index, period);
    MappingResult result = session.solve();
    // A deadline hit mid-bisection must abort the search, not masquerade
    // as an infeasible probe and skew the bracket.
    throw_if_interrupted(result);
    return result;
  };

  MappingResult at_hi = solve_at(period_hi);
  if (!at_hi.feasible()) {
    return std::nullopt;
  }

  // Bisection: the feasible set of periods is upward closed (a PAS for a
  // smaller period is a PAS for any larger one, and constraints (9)/(10)
  // only relax as mu grows).
  double lo = 0.0;
  double hi = period_hi;
  MinimalPeriodResult best;
  best.period = period_hi;
  best.mapping = std::move(at_hi);
  while (hi - lo > rel_tol * hi) {
    const double mid = 0.5 * (lo + hi);
    MappingResult r = solve_at(mid);
    if (r.feasible()) {
      hi = mid;
      best.period = mid;
      best.mapping = std::move(r);
    } else {
      lo = mid;
    }
  }
  // Leave the session at the period of the returned mapping, so its
  // configuration matches the result (pooled callers rely on this).
  session.set_required_period(graph_index, best.period);
  if (verify_result) {
    verify_mapping(session.config(), best.mapping);
    if (!best.mapping.verified) {
      // At ill-conditioned scales (replenishment intervals orders of
      // magnitude above the period) the solver's feasibility tolerance can
      // admit a probe period slightly below what the rounded allocation
      // actually sustains. The allocation's own MCR is the smallest period
      // it verifies at — re-anchor there when it still lies within the
      // bracket, instead of returning a mapping that fails its own
      // verification.
      const double mcr =
          best.mapping.graphs[static_cast<std::size_t>(graph_index)]
              .verification.mcr;
      const double candidate = std::min(period_hi, mcr * (1.0 + 1e-9));
      if (std::isfinite(mcr) && candidate > best.period) {
        best.period = candidate;
        session.set_required_period(graph_index, best.period);
        verify_mapping(session.config(), best.mapping);
      }
    }
  }
  return best;
}

}  // namespace bbs::core
