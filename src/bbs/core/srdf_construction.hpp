// Construction of the budget-scheduler SRDF model of a task graph
// (Section II-C of the paper, after Wiggers/Bekooij/Smit EMSOFT'09).
//
// Every task w becomes a two-actor dataflow component:
//
//            e_a1a2 (0 tokens)
//     v_a1 ------------------> v_a2 --(self loop, 1 token)--+
//      ^                        |  ^                        |
//      |                        |  +------------------------+
//   space queues             data queues
//   (from consumers'         (to consumers' v_b1)
//    v_b2, gamma-iota tokens)
//
// with firing durations
//     rho(v_a1) = rho(p) - beta(w)          (worst-case budget wait)
//     rho(v_a2) = rho(p) * chi(w) / beta(w) (execution under a TDM share)
//
// and every FIFO buffer becomes a data queue (iota(b) tokens) plus a reverse
// space queue (gamma(b) - iota(b) tokens).
//
// The same construction is used twice: symbolically by the Algorithm-1
// program builder (which needs the actor/queue indices and the E1/E2
// partition but keeps beta and gamma as variables), and concretely by the
// verifier/simulator (which fixes beta and gamma and evaluates durations).
#pragma once

#include <vector>

#include "bbs/dataflow/srdf_graph.hpp"
#include "bbs/model/configuration.hpp"

namespace bbs::core {

using linalg::Index;
using linalg::Vector;

/// Index map from a task graph into its SRDF model.
struct SrdfModel {
  dataflow::SrdfGraph graph;
  /// Per task: the wait actor v_i1 and the execute actor v_i2.
  std::vector<Index> wait_actor;
  std::vector<Index> exec_actor;
  /// Per task: the queue e_i1i2 (in E1) and the self-loop e_i2i2 (in E2).
  std::vector<Index> wait_queue;
  std::vector<Index> self_queue;
  /// Per buffer: the data queue (E2, iota tokens) and space queue (E2,
  /// gamma - iota tokens).
  std::vector<Index> data_queue;
  std::vector<Index> space_queue;
};

/// Builds the SRDF model of configuration graph `graph_index` with concrete
/// budgets (cycles, one entry per task) and buffer capacities (containers,
/// one entry per buffer). Throws ModelError if a budget is outside
/// (0, rho(p)] or a capacity is below the initial fill or < 1.
SrdfModel build_srdf(const model::Configuration& config, Index graph_index,
                     const Vector& budgets,
                     const std::vector<Index>& capacities);

/// Builds the SRDF skeleton only (all firing durations 0, data queues with
/// iota tokens, space queues with 0 tokens). Used by the program builder,
/// which replaces durations and token counts by decision variables.
SrdfModel build_srdf_skeleton(const model::Configuration& config,
                              Index graph_index);

}  // namespace bbs::core
