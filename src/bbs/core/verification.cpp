#include "bbs/core/verification.hpp"

#include <algorithm>
#include <limits>

#include "bbs/common/assert.hpp"
#include "bbs/dataflow/cycle_ratio.hpp"
#include "bbs/dataflow/pas.hpp"

namespace bbs::core {

GraphVerification verify_graph(const model::Configuration& config,
                               Index graph_index, const Vector& budgets,
                               const std::vector<Index>& capacities,
                               double tolerance) {
  GraphVerification out;
  out.required_period = config.task_graph(graph_index).required_period();
  const SrdfModel model = build_srdf(config, graph_index, budgets, capacities);

  // Howard's default comparison epsilon (the old bisect call took a bracket
  // width scaled by the period; a policy-improvement epsilon must stay tight
  // or a large period would let near-critical cycles terminate early). Any
  // residual MCR optimism is caught by the PAS re-check below, which remains
  // the authoritative feasibility gate.
  out.mcr = dataflow::max_cycle_ratio(model.graph);
  out.throughput_met =
      out.mcr <= out.required_period * (1.0 + tolerance) + tolerance;
  if (out.throughput_met) {
    const dataflow::PasResult pas =
        dataflow::compute_pas(model.graph, out.required_period);
    // The PAS at the required period can still fail if the MCR sits within
    // tolerance *above* mu; report what the PAS says in that case.
    out.throughput_met = pas.feasible;
    if (pas.feasible) out.start_times = pas.start_times;
  }
  return out;
}

bool verify_platform(const model::Configuration& config,
                     const std::vector<Vector>& budgets,
                     const std::vector<std::vector<Index>>& capacities,
                     double tolerance) {
  BBS_REQUIRE(budgets.size() ==
                  static_cast<std::size_t>(config.num_task_graphs()),
              "verify_platform: one budget vector per graph");
  BBS_REQUIRE(capacities.size() ==
                  static_cast<std::size_t>(config.num_task_graphs()),
              "verify_platform: one capacity vector per graph");

  // Constraint (4)/(9): per processor, budgets (plus overhead) fit in the
  // replenishment interval. Note the rounded form checks the actual integer
  // budgets, so the "+g" slack of (9) is no longer needed here.
  for (Index p = 0; p < config.num_processors(); ++p) {
    double sum = config.processor(p).scheduling_overhead;
    for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
      const model::TaskGraph& tg = config.task_graph(gi);
      for (Index t = 0; t < tg.num_tasks(); ++t) {
        if (tg.task(t).processor == p) {
          sum += budgets[static_cast<std::size_t>(gi)]
                        [static_cast<std::size_t>(t)];
        }
      }
    }
    if (sum > config.processor(p).replenishment_interval + tolerance) {
      return false;
    }
  }

  // Constraint (10) with concrete capacities: total buffer footprint per
  // memory.
  for (Index mem = 0; mem < config.num_memories(); ++mem) {
    const double cap = config.memory(mem).capacity;
    if (cap == -1.0) continue;
    double used = 0.0;
    for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
      const model::TaskGraph& tg = config.task_graph(gi);
      for (Index b = 0; b < tg.num_buffers(); ++b) {
        const model::Buffer& buf = tg.buffer(b);
        if (buf.memory != mem) continue;
        used += static_cast<double>(
                    capacities[static_cast<std::size_t>(gi)]
                              [static_cast<std::size_t>(b)]) *
                static_cast<double>(buf.container_size);
      }
    }
    if (used > cap + tolerance) return false;
  }

  // Per-buffer caps.
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    const model::TaskGraph& tg = config.task_graph(gi);
    for (Index b = 0; b < tg.num_buffers(); ++b) {
      const model::Buffer& buf = tg.buffer(b);
      const Index gamma = capacities[static_cast<std::size_t>(gi)]
                                    [static_cast<std::size_t>(b)];
      if (buf.max_capacity != -1 && gamma > buf.max_capacity) return false;
      if (gamma < 1 || gamma < buf.initial_fill) return false;
    }
  }
  return true;
}

bool simulation_within_pas_bound(const model::Configuration& config,
                                 Index graph_index, const Vector& budgets,
                                 const std::vector<Index>& capacities,
                                 const sim::GraphSimResult& sim_result,
                                 double tolerance) {
  if (sim_result.deadlocked) return false;
  const model::TaskGraph& tg = config.task_graph(graph_index);
  BBS_REQUIRE(sim_result.tasks.size() ==
                  static_cast<std::size_t>(tg.num_tasks()),
              "simulation_within_pas_bound: trace/task count mismatch");
  const double mu = tg.required_period();

  const SrdfModel m = build_srdf(config, graph_index, budgets, capacities);
  const dataflow::PasResult pas = dataflow::compute_pas(m.graph, mu);
  if (!pas.feasible) return false;

  for (Index t = 0; t < tg.num_tasks(); ++t) {
    const auto ti = static_cast<std::size_t>(t);
    const auto exec = static_cast<std::size_t>(m.exec_actor[ti]);
    const double s_exec = pas.start_times[exec];
    const double rho_exec = m.graph.actor(m.exec_actor[ti]).firing_duration;
    const sim::TaskTrace& trace = sim_result.tasks[ti];
    for (std::size_t k = 0; k < trace.finish.size(); ++k) {
      const double bound =
          s_exec + static_cast<double>(k) * mu + rho_exec;
      if (trace.finish[k] > bound + tolerance * std::max(1.0, bound)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace bbs::core
