// Independent verification of a mapped configuration.
//
// Given concrete budgets and buffer capacities, the budget-scheduler SRDF
// model is rebuilt with its actual firing durations and analysed with the
// maximum-cycle-ratio machinery: the throughput requirement of task graph T
// is met iff MCR(SRDF(T)) <= mu(T) (existence of a PAS with period mu, which
// is sufficient by temporal monotonicity). This closes the loop around the
// SOCP: any solver or rounding bug surfaces as a verification failure.
#pragma once

#include <vector>

#include "bbs/core/srdf_construction.hpp"
#include "bbs/sim/tdm_simulator.hpp"

namespace bbs::core {

struct GraphVerification {
  /// Maximum cycle ratio of the graph's SRDF model (its minimal feasible
  /// period, +inf when the model deadlocks).
  double mcr = 0.0;
  /// Required period mu(T).
  double required_period = 0.0;
  /// PAS start times for period mu (empty when infeasible).
  Vector start_times;
  bool throughput_met = false;
};

/// Verifies one task graph under the given budgets/capacities.
GraphVerification verify_graph(const model::Configuration& config,
                               Index graph_index, const Vector& budgets,
                               const std::vector<Index>& capacities,
                               double tolerance = 1e-6);

/// Checks the platform constraints (9) and (10) for concrete integer
/// budgets/capacities across all graphs: budget sums within replenishment
/// intervals (minus overhead) and buffer footprints within memory
/// capacities. Returns true iff all hold.
bool verify_platform(const model::Configuration& config,
                     const std::vector<Vector>& budgets,
                     const std::vector<std::vector<Index>>& capacities,
                     double tolerance = 1e-9);

/// Checks the conservativeness property of the dataflow model (EMSOFT'09)
/// on a TDM simulation trace: the k-th completion (k = 0, 1, ...) of every
/// task must not exceed the PAS bound
///
///     s(v_exec) + k * mu(T) + rho(v_exec),
///
/// where s are the PAS start times of the budget-scheduler SRDF model at
/// period mu. Unlike a measured steady-state period, this bound is exact at
/// every k, so it is meaningful even for traces that have not reached the
/// periodic regime. Returns false if the budgets/capacities do not admit a
/// PAS at period mu, or the trace exceeds the bound anywhere.
bool simulation_within_pas_bound(const model::Configuration& config,
                                 Index graph_index, const Vector& budgets,
                                 const std::vector<Index>& capacities,
                                 const sim::GraphSimResult& sim_result,
                                 double tolerance = 1e-6);

}  // namespace bbs::core
