#include "bbs/core/rounding.hpp"

#include <algorithm>
#include <cmath>

#include "bbs/common/assert.hpp"

namespace bbs::core {

Index ceil_with_tolerance(double value, double eps) {
  BBS_REQUIRE(eps >= 0.0, "ceil_with_tolerance: negative tolerance");
  const double slack = eps * std::max(1.0, std::abs(value));
  return static_cast<Index>(std::ceil(value - slack));
}

Index round_budget(double beta_continuous, Index granularity, double eps) {
  BBS_REQUIRE(granularity >= 1, "round_budget: granularity must be >= 1");
  BBS_REQUIRE(beta_continuous > 0.0, "round_budget: budget must be positive");
  const Index granules = std::max<Index>(
      1, ceil_with_tolerance(beta_continuous / static_cast<double>(granularity),
                             eps));
  return granules * granularity;
}

Index round_capacity(double delta_continuous, Index initial_fill, double eps) {
  // The IPM converges within feas_tol/gap_tol ~ 1e-6, so a token variable
  // sitting on its zero bound can legitimately come back a hair negative;
  // the clamp below absorbs it. Only clearly negative counts — beyond any
  // solver tolerance — indicate a sign bug upstream.
  BBS_REQUIRE(delta_continuous >= -1e-5,
              "round_capacity: negative token count");
  BBS_REQUIRE(initial_fill >= 0, "round_capacity: negative initial fill");
  const Index extra =
      std::max<Index>(0, ceil_with_tolerance(std::max(0.0, delta_continuous),
                                             eps));
  return std::max<Index>(1, initial_fill + extra);
}

}  // namespace bbs::core
