// Exact minimal buffer sizing for *fixed* budgets, by critical-cycle-guided
// incremental search.
//
// For fixed budgets the SRDF model's firing durations are constants, and
// throughput feasibility is monotone in every buffer capacity. Prior work
// (the buffer-sizing phase the paper builds on) solves an LP relaxation;
// this module instead searches integer capacities directly:
//
//   start with the minimal capacities (max(1, iota(b)));
//   while MCR > mu: find a critical cycle, pick the cheapest buffer whose
//   space queue lies on it, and add one container; respect per-buffer caps
//   and memory capacities.
//
// Every increment is necessary in the sense that *some* buffer on the
// critical cycle must grow for the MCR to drop, so the search terminates at
// a feasible point whenever one exists within the caps; with a single
// buffer per cycle the result is exactly minimal. For multi-buffer cycles
// the greedy choice (cheapest weighted container) is a heuristic; the test
// suite compares it against the LP-based sizing and the exhaustive
// reference.
#pragma once

#include <optional>

#include "bbs/core/srdf_construction.hpp"

namespace bbs::core {

struct BufferSizingResult {
  std::vector<Index> capacities;  ///< gamma(b) per buffer
  double mcr = 0.0;               ///< achieved maximum cycle ratio
  int increments = 0;             ///< containers added beyond the minimum
};

/// Minimal-capacity search for graph `graph_index` under fixed `budgets`.
/// Returns nullopt if no capacity assignment within the per-buffer caps and
/// memory limits sustains the required period.
std::optional<BufferSizingResult> size_buffers_for_budgets(
    const model::Configuration& config, Index graph_index,
    const Vector& budgets);

}  // namespace bbs::core
