// Top-level API: simultaneous budget and buffer size computation.
//
// compute_budgets_and_buffers() is the end-to-end flow of the paper:
//   1. translate the configuration into the Algorithm-1 SOCP,
//   2. solve it with the interior-point method,
//   3. round budgets and capacities conservatively,
//   4. verify each task graph's throughput with the independent MCR check
//      and the platform constraints with exact integer arithmetic.
//
// The result carries both the continuous optimum (what the paper's figures
// plot) and the rounded allocation (what a mapping flow would deploy).
#pragma once

#include <vector>

#include "bbs/core/program_builder.hpp"
#include "bbs/core/verification.hpp"
#include "bbs/solver/ipm_solver.hpp"

namespace bbs::core {

struct TaskAllocation {
  double budget_continuous = 0.0;  ///< beta'(w) from the SOCP
  Index budget = 0;                ///< beta(w) = g*ceil(beta'/g)
};

struct BufferAllocation {
  double tokens_continuous = 0.0;  ///< delta'(e) of the space queue
  Index capacity = 0;              ///< gamma(b) = iota + ceil(delta')
};

struct MappedGraph {
  std::vector<TaskAllocation> tasks;
  std::vector<BufferAllocation> buffers;
  GraphVerification verification;
};

struct MappingResult {
  solver::SolveStatus status = solver::SolveStatus::kNumericalFailure;
  std::vector<MappedGraph> graphs;
  /// Objective of the continuous SOCP optimum.
  double objective_continuous = 0.0;
  /// Same weighted objective evaluated on the rounded allocation.
  double objective_rounded = 0.0;
  int ipm_iterations = 0;
  /// True iff the IPM solve behind this result was seeded from a previous
  /// solution (warm-started SolverSession solves only; always false for
  /// one-shot solves). Carried for every result kind, also infeasible ones.
  bool warm_started = false;
  /// Recovery-ladder attempts the solve consumed after an initial numerical
  /// failure (see SolverOptions::recovery_attempts), and whether one of
  /// them produced this result.
  int recovery_attempts = 0;
  bool recovered = false;
  /// True iff the SOCP was solved, rounding succeeded, every graph passes
  /// the MCR verification and the platform constraints hold.
  bool verified = false;

  bool feasible() const { return status == solver::SolveStatus::kOptimal; }
  /// True iff the solve exited early on a deadline or cancellation: the
  /// result is neither a solution nor an infeasibility certificate, and
  /// search drivers must abort rather than read it as an infeasible probe.
  bool interrupted() const {
    return status == solver::SolveStatus::kTimedOut ||
           status == solver::SolveStatus::kCancelled;
  }
};

struct MappingOptions {
  solver::SolverOptions ipm;
  /// Run the MCR/platform verification pass on the rounded solution.
  bool verify = true;
  /// Rounding tolerance (see bbs/core/rounding.hpp).
  double rounding_eps = 1e-7;
};

/// Computes budgets and buffer capacities for all task graphs of the
/// configuration simultaneously. Throws ModelError for invalid
/// configurations; solver failures are reported through `status`.
MappingResult compute_budgets_and_buffers(const model::Configuration& config,
                                          const MappingOptions& options = {});

/// Convenience: solves with `options` but a caller-provided pre-built
/// program (used by the sweeps to avoid re-validating identical structure).
MappingResult solve_built_program(const model::Configuration& config,
                                  const BuiltProgram& program,
                                  const MappingOptions& options);

/// The rounding + verification tail of the flow: turns a raw IPM solution of
/// `program` into a MappingResult. Shared by the one-shot solvers above and
/// the warm-started SolverSession (which produces the SolveResult through a
/// persistent workspace).
MappingResult mapping_from_solution(const model::Configuration& config,
                                    const BuiltProgram& program,
                                    const solver::SolveResult& solution,
                                    const MappingOptions& options);

/// Aborts a multi-solve driver when a probe was interrupted: kTimedOut
/// throws DeadlineExceeded, kCancelled throws Cancelled; anything else is a
/// no-op (kNumericalFailure is deliberately NOT an interruption — search
/// drivers treat a numerically failed probe as infeasible and keep
/// searching, which only single, final solves escalate to a hard error).
/// Without this a bisection or sweep would silently misread the
/// half-finished probe as an infeasible point.
void throw_if_interrupted(const MappingResult& result);

/// (Re)runs the MCR + platform verification pass on a feasible rounded
/// mapping, filling per-graph verification data and `verified`. Lets search
/// drivers probe with `options.verify == false` — a probe is only a
/// feasibility query — and verify just the mapping they return. No-op on
/// infeasible results.
void verify_mapping(const model::Configuration& config, MappingResult& result);

}  // namespace bbs::core
