// Conservative rounding of the continuous Algorithm-1 solution
// (Section IV of the paper).
//
// Budgets:    beta(w) = g * ceil(beta'(w) / g). Rounding budgets *up* is
//             conservative because both actor durations of the task model
//             shrink when the budget grows, and SRDF graphs are temporally
//             monotonic; the "+ g" term of Constraint (9) pre-allocates the
//             head-room this rounding can consume.
// Capacities: gamma(b) = iota(b) + ceil(delta'(b)), at least 1 container.
//             Extra tokens can only make token arrivals earlier (temporal
//             monotonicity again); the "+ 1" of Constraint (10) pre-allocates
//             the memory this rounding can consume.
//
// A relative epsilon absorbs solver round-off (a beta' of 8 + 1e-9 must not
// be charged a full extra granule); the end-to-end conservativeness of the
// epsilon is re-checked by the MCR verification pass after rounding.
#pragma once

#include <vector>

#include "bbs/linalg/sparse_matrix.hpp"

namespace bbs::core {

using linalg::Index;
using linalg::Vector;

/// ceil(value) with a relative tolerance: values within
/// eps * max(1, |value|) below an integer round to that integer.
Index ceil_with_tolerance(double value, double eps = 1e-7);

/// beta = g * ceil(beta' / g), tolerance-aware, at least g.
Index round_budget(double beta_continuous, Index granularity,
                   double eps = 1e-7);

/// gamma = iota + ceil(delta'), tolerance-aware, at least max(1, iota).
Index round_capacity(double delta_continuous, Index initial_fill,
                     double eps = 1e-7);

}  // namespace bbs::core
