#include "bbs/core/program_builder.hpp"

#include <numeric>
#include <string>

#include "bbs/common/assert.hpp"

namespace bbs::core {

namespace {

/// Union-find over SRDF actors; used to pick one reference actor (pinned
/// start time 0) per weakly connected component.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t a) {
    while (parent_[a] != a) {
      parent_[a] = parent_[parent_[a]];
      a = parent_[a];
    }
    return a;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

using Terms = std::vector<std::pair<Index, double>>;

/// Accumulates `coeff * variable` if `var` is a real variable, otherwise
/// contributes nothing (pinned start times are the constant 0).
void add_term(Terms& terms, Index var, double coeff) {
  if (var >= 0 && coeff != 0.0) terms.emplace_back(var, coeff);
}

// ---------------------------------------------------------------------------
// Right-hand sides of the LP rows, shared between the initial build and the
// in-place refresh path (BuiltProgram::refresh_*). Each reads the *current*
// configuration and fixed values, so a refresh after a parameter change
// reproduces exactly what a fresh build would emit.
// ---------------------------------------------------------------------------

/// (6) for e_i1i2: s2 >= s1 + rho - beta'.
double e1_rhs(const model::Configuration& config, const ProgramLayout& layout,
              Index gi, Index t) {
  const model::Task& task = config.task_graph(gi).task(t);
  double rhs = -config.processor(task.processor).replenishment_interval;
  if (layout.budgets_fixed) {
    rhs += layout.fixed_budget_values[static_cast<std::size_t>(gi)]
                                     [static_cast<std::size_t>(t)];
  }
  return rhs;
}

/// (7) for the self-loop e_i2i2: rho*chi*lambda <= mu.
double selfloop_rhs(const model::Configuration& config,
                    const ProgramLayout& layout, Index gi, Index t) {
  const model::TaskGraph& tg = config.task_graph(gi);
  const model::Task& task = tg.task(t);
  double rhs = tg.required_period();
  if (layout.budgets_fixed) {
    const double rho = config.processor(task.processor).replenishment_interval;
    rhs -= rho * task.wcet /
           layout.fixed_budget_values[static_cast<std::size_t>(gi)]
                                     [static_cast<std::size_t>(t)];
  }
  return rhs;
}

/// (7) data queue: s(cons.wait) >= s(prod.exec) + rho_p*chi_p*lambda_p
/// - iota*mu.
double data_queue_rhs(const model::Configuration& config,
                      const ProgramLayout& layout, Index gi, Index b) {
  const model::TaskGraph& tg = config.task_graph(gi);
  const model::Buffer& buf = tg.buffer(b);
  double rhs = static_cast<double>(buf.initial_fill) * tg.required_period();
  if (layout.budgets_fixed) {
    const model::Task& prod = tg.task(buf.producer);
    const double rho_p =
        config.processor(prod.processor).replenishment_interval;
    rhs -= rho_p * prod.wcet /
           layout.fixed_budget_values[static_cast<std::size_t>(gi)]
                                     [static_cast<std::size_t>(buf.producer)];
  }
  return rhs;
}

/// (7) space queue: s(prod.wait) >= s(cons.exec) + rho_c*chi_c*lambda_c
/// - delta'*mu.
double space_queue_rhs(const model::Configuration& config,
                       const ProgramLayout& layout, Index gi, Index b) {
  const model::TaskGraph& tg = config.task_graph(gi);
  const model::Buffer& buf = tg.buffer(b);
  double rhs = 0.0;
  if (layout.budgets_fixed) {
    const model::Task& cons = tg.task(buf.consumer);
    const double rho_c =
        config.processor(cons.processor).replenishment_interval;
    rhs -= rho_c * cons.wcet /
           layout.fixed_budget_values[static_cast<std::size_t>(gi)]
                                     [static_cast<std::size_t>(buf.consumer)];
  }
  if (layout.deltas_fixed) {
    rhs += layout.fixed_delta_values[static_cast<std::size_t>(gi)]
                                    [static_cast<std::size_t>(b)] *
           tg.required_period();
  }
  return rhs;
}

/// (9) per processor: sum over tasks on p of (beta' + g) <= rho(p) - o(p).
double processor_rhs(const model::Configuration& config,
                     const ProgramLayout& layout, Index p) {
  double rhs = config.processor(p).replenishment_interval -
               config.processor(p).scheduling_overhead;
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    const model::TaskGraph& tg = config.task_graph(gi);
    for (Index t = 0; t < tg.num_tasks(); ++t) {
      if (tg.task(t).processor != p) continue;
      rhs -= static_cast<double>(config.granularity());
      if (layout.budgets_fixed) {
        rhs -= layout.fixed_budget_values[static_cast<std::size_t>(gi)]
                                         [static_cast<std::size_t>(t)];
      }
    }
  }
  return rhs;
}

/// (10) per memory: sum over buffers in m of (iota + delta' + 1)*zeta
/// <= sigma(m).
double memory_rhs(const model::Configuration& config,
                  const ProgramLayout& layout, Index mem) {
  double rhs = config.memory(mem).capacity;
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    const model::TaskGraph& tg = config.task_graph(gi);
    for (Index b = 0; b < tg.num_buffers(); ++b) {
      const model::Buffer& buf = tg.buffer(b);
      if (buf.memory != mem) continue;
      const double zeta = static_cast<double>(buf.container_size);
      rhs -= zeta * static_cast<double>(buf.initial_fill + 1);
      if (layout.deltas_fixed) {
        rhs -= zeta * layout.fixed_delta_values[static_cast<std::size_t>(gi)]
                                               [static_cast<std::size_t>(b)];
      }
    }
  }
  return rhs;
}

}  // namespace

Vector ProgramLayout::budgets_of(const Vector& x, Index graph) const {
  const auto g = static_cast<std::size_t>(graph);
  const auto& vars = beta_var[g];
  Vector out(vars.size(), 0.0);
  for (std::size_t t = 0; t < vars.size(); ++t) {
    out[t] = (vars[t] >= 0) ? x[static_cast<std::size_t>(vars[t])]
                            : fixed_budget_values[g][t];
  }
  return out;
}

Vector ProgramLayout::deltas_of(const Vector& x, Index graph) const {
  const auto g = static_cast<std::size_t>(graph);
  const auto& vars = delta_var[g];
  Vector out(vars.size(), 0.0);
  for (std::size_t b = 0; b < vars.size(); ++b) {
    out[b] = (vars[b] >= 0) ? x[static_cast<std::size_t>(vars[b])]
                            : fixed_delta_values[g][b];
  }
  return out;
}

BuiltProgram build_algorithm1(const model::Configuration& config,
                              const BuildOptions& options) {
  config.validate();
  const Index num_graphs = config.num_task_graphs();
  const bool budgets_fixed = options.fixed_budgets.has_value();
  const bool deltas_fixed = options.fixed_deltas.has_value();
  if (budgets_fixed) {
    BBS_REQUIRE(static_cast<Index>(options.fixed_budgets->size()) ==
                    num_graphs,
                "build_algorithm1: fixed_budgets needs one vector per graph");
  }
  if (deltas_fixed) {
    BBS_REQUIRE(static_cast<Index>(options.fixed_deltas->size()) == num_graphs,
                "build_algorithm1: fixed_deltas needs one vector per graph");
  }

  ProgramLayout layout;
  layout.budgets_fixed = budgets_fixed;
  layout.deltas_fixed = deltas_fixed;
  layout.models.reserve(static_cast<std::size_t>(num_graphs));
  layout.start_var.resize(static_cast<std::size_t>(num_graphs));
  layout.beta_var.resize(static_cast<std::size_t>(num_graphs));
  layout.lambda_var.resize(static_cast<std::size_t>(num_graphs));
  layout.delta_var.resize(static_cast<std::size_t>(num_graphs));
  layout.fixed_budget_values.resize(static_cast<std::size_t>(num_graphs));
  layout.fixed_delta_values.resize(static_cast<std::size_t>(num_graphs));

  // ---- Variable layout ------------------------------------------------------
  Index next_var = 0;
  for (Index gi = 0; gi < num_graphs; ++gi) {
    const auto g = static_cast<std::size_t>(gi);
    const model::TaskGraph& tg = config.task_graph(gi);
    layout.models.push_back(build_srdf_skeleton(config, gi));
    const SrdfModel& m = layout.models.back();

    // One pinned reference per weakly connected component.
    const auto num_actors = static_cast<std::size_t>(m.graph.num_actors());
    UnionFind uf(num_actors);
    for (Index q = 0; q < m.graph.num_queues(); ++q) {
      uf.unite(static_cast<std::size_t>(m.graph.queue(q).from),
               static_cast<std::size_t>(m.graph.queue(q).to));
    }
    std::vector<bool> component_pinned(num_actors, false);
    layout.start_var[g].assign(num_actors, -1);
    for (std::size_t v = 0; v < num_actors; ++v) {
      const std::size_t root = uf.find(v);
      if (!component_pinned[root]) {
        component_pinned[root] = true;  // v becomes the component reference
      } else {
        layout.start_var[g][v] = next_var++;
      }
    }

    const auto num_tasks = static_cast<std::size_t>(tg.num_tasks());
    layout.beta_var[g].assign(num_tasks, -1);
    layout.lambda_var[g].assign(num_tasks, -1);
    if (budgets_fixed) {
      const Vector& fixed = (*options.fixed_budgets)[g];
      BBS_REQUIRE(fixed.size() == num_tasks,
                  "build_algorithm1: fixed budget count mismatch");
      layout.fixed_budget_values[g] = fixed;
      for (double beta : fixed) {
        if (!(beta > 0.0)) {
          throw ModelError("build_algorithm1: fixed budgets must be positive");
        }
      }
    } else {
      for (std::size_t t = 0; t < num_tasks; ++t) {
        layout.beta_var[g][t] = next_var++;
        layout.lambda_var[g][t] = next_var++;
      }
    }

    const auto num_buffers = static_cast<std::size_t>(tg.num_buffers());
    layout.delta_var[g].assign(num_buffers, -1);
    if (deltas_fixed) {
      const Vector& fixed = (*options.fixed_deltas)[g];
      BBS_REQUIRE(fixed.size() == num_buffers,
                  "build_algorithm1: fixed delta count mismatch");
      layout.fixed_delta_values[g] = fixed;
      for (double d : fixed) {
        if (d < 0.0) {
          throw ModelError("build_algorithm1: fixed deltas must be >= 0");
        }
      }
    } else {
      for (std::size_t b = 0; b < num_buffers; ++b) {
        layout.delta_var[g][b] = next_var++;
      }
    }
  }
  layout.num_vars = next_var;

  solver::ConicProblemBuilder builder(next_var);

  // ---- Objective (5): sum a(w) beta'(w) + sum b(e) zeta(e) delta'(e) --------
  for (Index gi = 0; gi < num_graphs; ++gi) {
    const auto g = static_cast<std::size_t>(gi);
    const model::TaskGraph& tg = config.task_graph(gi);
    for (Index t = 0; t < tg.num_tasks(); ++t) {
      const Index var = layout.beta_var[g][static_cast<std::size_t>(t)];
      if (var >= 0) builder.set_objective(var, tg.task(t).budget_weight);
    }
    for (Index b = 0; b < tg.num_buffers(); ++b) {
      const Index var = layout.delta_var[g][static_cast<std::size_t>(b)];
      if (var >= 0) {
        const model::Buffer& buf = tg.buffer(b);
        builder.set_objective(
            var, buf.size_weight * static_cast<double>(buf.container_size));
      }
    }
  }

  // ---- LP rows --------------------------------------------------------------
  // Row indices (and later the -mu coefficient slots) are recorded in `rows`
  // as constraints are emitted, keyed by the originating model entity; the
  // refresh_* members replay the rhs helpers against a mutated
  // configuration to update the program in place.
  ProgramRowMap rows;
  rows.graphs.resize(static_cast<std::size_t>(num_graphs));
  rows.processor_row.assign(static_cast<std::size_t>(config.num_processors()),
                            -1);
  rows.memory_row.assign(static_cast<std::size_t>(config.num_memories()), -1);

  for (Index gi = 0; gi < num_graphs; ++gi) {
    const auto g = static_cast<std::size_t>(gi);
    const model::TaskGraph& tg = config.task_graph(gi);
    const SrdfModel& m = layout.models[g];
    const double mu = tg.required_period();
    ProgramRowMap::GraphRows& gr = rows.graphs[g];
    gr.task_e1.assign(static_cast<std::size_t>(tg.num_tasks()), -1);
    gr.task_selfloop.assign(static_cast<std::size_t>(tg.num_tasks()), -1);
    gr.buf_data.assign(static_cast<std::size_t>(tg.num_buffers()), -1);
    gr.buf_space.assign(static_cast<std::size_t>(tg.num_buffers()), -1);
    gr.buf_cap.assign(static_cast<std::size_t>(tg.num_buffers()), -1);
    gr.space_delta_slot.assign(static_cast<std::size_t>(tg.num_buffers()), -1);

    for (Index t = 0; t < tg.num_tasks(); ++t) {
      const auto ti = static_cast<std::size_t>(t);
      const model::Task& task = tg.task(t);
      const double rho = config.processor(task.processor).replenishment_interval;
      const Index s1 = layout.start_var[g][static_cast<std::size_t>(
          m.wait_actor[ti])];
      const Index s2 = layout.start_var[g][static_cast<std::size_t>(
          m.exec_actor[ti])];
      const Index beta = layout.beta_var[g][ti];
      const Index lambda = layout.lambda_var[g][ti];

      // (6) for e_i1i2 (E1, zero tokens): s2 >= s1 + rho - beta'.
      {
        Terms terms;
        add_term(terms, s1, 1.0);
        add_term(terms, s2, -1.0);
        add_term(terms, beta, -1.0);
        gr.task_e1[ti] =
            builder.add_inequality(terms, e1_rhs(config, layout, gi, t));
      }

      // (7) for the self-loop e_i2i2 (E2, one token):
      // rho*chi*lambda <= mu  (start times cancel).
      {
        Terms terms;
        add_term(terms, lambda, rho * task.wcet);
        gr.task_selfloop[ti] =
            builder.add_inequality(terms, selfloop_rhs(config, layout, gi, t));
      }
    }

    for (Index b = 0; b < tg.num_buffers(); ++b) {
      const auto bi = static_cast<std::size_t>(b);
      const model::Buffer& buf = tg.buffer(b);
      const model::Task& prod = tg.task(buf.producer);
      const model::Task& cons = tg.task(buf.consumer);
      const double rho_p =
          config.processor(prod.processor).replenishment_interval;
      const double rho_c =
          config.processor(cons.processor).replenishment_interval;

      const Index s_prod_exec = layout.start_var[g][static_cast<std::size_t>(
          m.exec_actor[static_cast<std::size_t>(buf.producer)])];
      const Index s_prod_wait = layout.start_var[g][static_cast<std::size_t>(
          m.wait_actor[static_cast<std::size_t>(buf.producer)])];
      const Index s_cons_exec = layout.start_var[g][static_cast<std::size_t>(
          m.exec_actor[static_cast<std::size_t>(buf.consumer)])];
      const Index s_cons_wait = layout.start_var[g][static_cast<std::size_t>(
          m.wait_actor[static_cast<std::size_t>(buf.consumer)])];
      const Index lambda_p =
          layout.lambda_var[g][static_cast<std::size_t>(buf.producer)];
      const Index lambda_c =
          layout.lambda_var[g][static_cast<std::size_t>(buf.consumer)];
      const Index delta = layout.delta_var[g][bi];

      // (7) data queue (E2): s(cons.wait) >= s(prod.exec)
      //     + rho_p*chi_p*lambda_p - iota*mu.
      {
        Terms terms;
        add_term(terms, s_prod_exec, 1.0);
        add_term(terms, s_cons_wait, -1.0);
        add_term(terms, lambda_p, rho_p * prod.wcet);
        gr.buf_data[bi] = builder.add_inequality(
            terms, data_queue_rhs(config, layout, gi, b));
      }

      // (7) space queue (E2): s(prod.wait) >= s(cons.exec)
      //     + rho_c*chi_c*lambda_c - delta'*mu.
      {
        Terms terms;
        add_term(terms, s_cons_exec, 1.0);
        add_term(terms, s_prod_wait, -1.0);
        add_term(terms, lambda_c, rho_c * cons.wcet);
        add_term(terms, delta, -mu);
        gr.buf_space[bi] = builder.add_inequality(
            terms, space_queue_rhs(config, layout, gi, b));
      }

      if (delta >= 0) {
        // delta' >= 0.
        builder.add_inequality({{delta, -1.0}}, 0.0);
        // Optional capacity cap: iota + delta' <= max_capacity.
        if (buf.max_capacity != -1) {
          gr.buf_cap[bi] = builder.add_inequality(
              {{delta, 1.0}},
              static_cast<double>(buf.max_capacity - buf.initial_fill));
        }
      }
    }
  }

  // (9) per processor: sum over tasks on p of (beta' + g) <= rho(p) - o(p).
  for (Index p = 0; p < config.num_processors(); ++p) {
    Terms terms;
    Index tasks_on_p = 0;
    for (Index gi = 0; gi < num_graphs; ++gi) {
      const auto g = static_cast<std::size_t>(gi);
      const model::TaskGraph& tg = config.task_graph(gi);
      for (Index t = 0; t < tg.num_tasks(); ++t) {
        if (tg.task(t).processor != p) continue;
        ++tasks_on_p;
        add_term(terms, layout.beta_var[g][static_cast<std::size_t>(t)], 1.0);
      }
    }
    if (tasks_on_p > 0) {
      rows.processor_row[static_cast<std::size_t>(p)] =
          builder.add_inequality(terms, processor_rhs(config, layout, p));
    }
  }

  // (10) per memory: sum over buffers in m of (iota + delta' + 1)*zeta
  //      <= sigma(m).
  for (Index mem = 0; mem < config.num_memories(); ++mem) {
    if (config.memory(mem).capacity == -1.0) continue;
    Terms terms;
    Index buffers_in_m = 0;
    for (Index gi = 0; gi < num_graphs; ++gi) {
      const auto g = static_cast<std::size_t>(gi);
      const model::TaskGraph& tg = config.task_graph(gi);
      for (Index b = 0; b < tg.num_buffers(); ++b) {
        const model::Buffer& buf = tg.buffer(b);
        if (buf.memory != mem) continue;
        ++buffers_in_m;
        add_term(terms, layout.delta_var[g][static_cast<std::size_t>(b)],
                 static_cast<double>(buf.container_size));
      }
    }
    if (buffers_in_m > 0) {
      rows.memory_row[static_cast<std::size_t>(mem)] =
          builder.add_inequality(terms, memory_rhs(config, layout, mem));
    }
  }

  // ---- (8) SOC blocks: (lambda + beta', lambda - beta', 2) in SOC3 ----------
  if (!budgets_fixed) {
    for (Index gi = 0; gi < num_graphs; ++gi) {
      const auto g = static_cast<std::size_t>(gi);
      const model::TaskGraph& tg = config.task_graph(gi);
      for (Index t = 0; t < tg.num_tasks(); ++t) {
        const Index beta = layout.beta_var[g][static_cast<std::size_t>(t)];
        const Index lambda = layout.lambda_var[g][static_cast<std::size_t>(t)];
        builder.begin_soc(3);
        builder.soc_row({{lambda, -1.0}, {beta, -1.0}}, 0.0);
        builder.soc_row({{lambda, -1.0}, {beta, 1.0}}, 0.0);
        builder.soc_row({}, 2.0);
      }
    }
  }

  BuiltProgram program{builder.build(), std::move(layout), std::move(rows)};

  // Resolve the CSC slots of the -mu coefficients now that G exists.
  for (Index gi = 0; gi < num_graphs; ++gi) {
    const auto g = static_cast<std::size_t>(gi);
    ProgramRowMap::GraphRows& gr = program.rows.graphs[g];
    for (std::size_t b = 0; b < gr.buf_space.size(); ++b) {
      const Index delta = program.layout.delta_var[g][b];
      if (delta < 0) continue;
      gr.space_delta_slot[b] =
          program.problem.g_value_slot(gr.buf_space[b], delta);
      BBS_ASSERT_MSG(gr.space_delta_slot[b] >= 0,
                     "space-queue row lost its delta coefficient");
    }
  }
  return program;
}

// ---------------------------------------------------------------------------
// In-place refresh path
// ---------------------------------------------------------------------------

void BuiltProgram::refresh_required_period(const model::Configuration& config,
                                           Index graph) {
  BBS_REQUIRE(graph >= 0 &&
                  static_cast<std::size_t>(graph) < rows.graphs.size(),
              "refresh_required_period: graph out of range");
  const auto g = static_cast<std::size_t>(graph);
  const model::TaskGraph& tg = config.task_graph(graph);
  const double mu = tg.required_period();
  const ProgramRowMap::GraphRows& gr = rows.graphs[g];
  for (Index t = 0; t < tg.num_tasks(); ++t) {
    problem.set_h(gr.task_selfloop[static_cast<std::size_t>(t)],
                  selfloop_rhs(config, layout, graph, t));
  }
  for (Index b = 0; b < tg.num_buffers(); ++b) {
    const auto bi = static_cast<std::size_t>(b);
    problem.set_h(gr.buf_data[bi], data_queue_rhs(config, layout, graph, b));
    problem.set_h(gr.buf_space[bi],
                  space_queue_rhs(config, layout, graph, b));
    if (gr.space_delta_slot[bi] >= 0) {
      problem.set_g_value(gr.space_delta_slot[bi], -mu);
    }
  }
}

void BuiltProgram::refresh_buffer_cap(const model::Configuration& config,
                                      Index graph, Index buffer) {
  BBS_REQUIRE(graph >= 0 &&
                  static_cast<std::size_t>(graph) < rows.graphs.size(),
              "refresh_buffer_cap: graph out of range");
  const model::Buffer& buf = config.task_graph(graph).buffer(buffer);
  const Index row =
      rows.graphs[static_cast<std::size_t>(graph)]
          .buf_cap[static_cast<std::size_t>(buffer)];
  BBS_REQUIRE(row >= 0,
              "refresh_buffer_cap: buffer had no capacity cap when the "
              "program was built (set a finite max_capacity before building)");
  BBS_REQUIRE(buf.max_capacity != -1,
              "refresh_buffer_cap: cannot remove a cap in place");
  problem.set_h(row,
                static_cast<double>(buf.max_capacity - buf.initial_fill));
}

void BuiltProgram::refresh_fixed_budgets(const model::Configuration& config,
                                         Index graph, const Vector& budgets) {
  BBS_REQUIRE(layout.budgets_fixed,
              "refresh_fixed_budgets: program was built with variable budgets");
  BBS_REQUIRE(graph >= 0 &&
                  static_cast<std::size_t>(graph) < rows.graphs.size(),
              "refresh_fixed_budgets: graph out of range");
  const auto g = static_cast<std::size_t>(graph);
  const model::TaskGraph& tg = config.task_graph(graph);
  BBS_REQUIRE(budgets.size() == static_cast<std::size_t>(tg.num_tasks()),
              "refresh_fixed_budgets: budget count mismatch");
  for (double beta : budgets) {
    if (!(beta > 0.0)) {
      throw ModelError("refresh_fixed_budgets: budgets must be positive");
    }
  }
  layout.fixed_budget_values[g] = budgets;

  const ProgramRowMap::GraphRows& gr = rows.graphs[g];
  for (Index t = 0; t < tg.num_tasks(); ++t) {
    const auto ti = static_cast<std::size_t>(t);
    problem.set_h(gr.task_e1[ti], e1_rhs(config, layout, graph, t));
    problem.set_h(gr.task_selfloop[ti],
                  selfloop_rhs(config, layout, graph, t));
  }
  for (Index b = 0; b < tg.num_buffers(); ++b) {
    const auto bi = static_cast<std::size_t>(b);
    problem.set_h(gr.buf_data[bi], data_queue_rhs(config, layout, graph, b));
    problem.set_h(gr.buf_space[bi],
                  space_queue_rhs(config, layout, graph, b));
  }
  // Processor rows aggregate fixed budgets across all graphs.
  for (Index p = 0; p < config.num_processors(); ++p) {
    const Index row = rows.processor_row[static_cast<std::size_t>(p)];
    if (row >= 0) problem.set_h(row, processor_rhs(config, layout, p));
  }
}

void BuiltProgram::refresh_fixed_deltas(const model::Configuration& config,
                                        Index graph, const Vector& deltas) {
  BBS_REQUIRE(layout.deltas_fixed,
              "refresh_fixed_deltas: program was built with variable deltas");
  BBS_REQUIRE(graph >= 0 &&
                  static_cast<std::size_t>(graph) < rows.graphs.size(),
              "refresh_fixed_deltas: graph out of range");
  const auto g = static_cast<std::size_t>(graph);
  const model::TaskGraph& tg = config.task_graph(graph);
  BBS_REQUIRE(deltas.size() == static_cast<std::size_t>(tg.num_buffers()),
              "refresh_fixed_deltas: delta count mismatch");
  for (double d : deltas) {
    if (d < 0.0) {
      throw ModelError("refresh_fixed_deltas: deltas must be >= 0");
    }
  }
  layout.fixed_delta_values[g] = deltas;

  const ProgramRowMap::GraphRows& gr = rows.graphs[g];
  for (Index b = 0; b < tg.num_buffers(); ++b) {
    problem.set_h(gr.buf_space[static_cast<std::size_t>(b)],
                  space_queue_rhs(config, layout, graph, b));
  }
  // Memory rows aggregate fixed deltas across all graphs.
  for (Index mem = 0; mem < config.num_memories(); ++mem) {
    const Index row = rows.memory_row[static_cast<std::size_t>(mem)];
    if (row >= 0) problem.set_h(row, memory_rhs(config, layout, mem));
  }
}

}  // namespace bbs::core
