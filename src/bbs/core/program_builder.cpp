#include "bbs/core/program_builder.hpp"

#include <numeric>
#include <string>

#include "bbs/common/assert.hpp"

namespace bbs::core {

namespace {

/// Union-find over SRDF actors; used to pick one reference actor (pinned
/// start time 0) per weakly connected component.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t a) {
    while (parent_[a] != a) {
      parent_[a] = parent_[parent_[a]];
      a = parent_[a];
    }
    return a;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

using Terms = std::vector<std::pair<Index, double>>;

/// Accumulates `coeff * variable` if `var` is a real variable, otherwise
/// contributes nothing (pinned start times are the constant 0).
void add_term(Terms& terms, Index var, double coeff) {
  if (var >= 0 && coeff != 0.0) terms.emplace_back(var, coeff);
}

}  // namespace

Vector ProgramLayout::budgets_of(const Vector& x, Index graph) const {
  const auto g = static_cast<std::size_t>(graph);
  const auto& vars = beta_var[g];
  Vector out(vars.size(), 0.0);
  for (std::size_t t = 0; t < vars.size(); ++t) {
    out[t] = (vars[t] >= 0) ? x[static_cast<std::size_t>(vars[t])]
                            : fixed_budget_values[g][t];
  }
  return out;
}

Vector ProgramLayout::deltas_of(const Vector& x, Index graph) const {
  const auto g = static_cast<std::size_t>(graph);
  const auto& vars = delta_var[g];
  Vector out(vars.size(), 0.0);
  for (std::size_t b = 0; b < vars.size(); ++b) {
    out[b] = (vars[b] >= 0) ? x[static_cast<std::size_t>(vars[b])]
                            : fixed_delta_values[g][b];
  }
  return out;
}

BuiltProgram build_algorithm1(const model::Configuration& config,
                              const BuildOptions& options) {
  config.validate();
  const Index num_graphs = config.num_task_graphs();
  const bool budgets_fixed = options.fixed_budgets.has_value();
  const bool deltas_fixed = options.fixed_deltas.has_value();
  if (budgets_fixed) {
    BBS_REQUIRE(static_cast<Index>(options.fixed_budgets->size()) ==
                    num_graphs,
                "build_algorithm1: fixed_budgets needs one vector per graph");
  }
  if (deltas_fixed) {
    BBS_REQUIRE(static_cast<Index>(options.fixed_deltas->size()) == num_graphs,
                "build_algorithm1: fixed_deltas needs one vector per graph");
  }

  ProgramLayout layout;
  layout.models.reserve(static_cast<std::size_t>(num_graphs));
  layout.start_var.resize(static_cast<std::size_t>(num_graphs));
  layout.beta_var.resize(static_cast<std::size_t>(num_graphs));
  layout.lambda_var.resize(static_cast<std::size_t>(num_graphs));
  layout.delta_var.resize(static_cast<std::size_t>(num_graphs));
  layout.fixed_budget_values.resize(static_cast<std::size_t>(num_graphs));
  layout.fixed_delta_values.resize(static_cast<std::size_t>(num_graphs));

  // ---- Variable layout ------------------------------------------------------
  Index next_var = 0;
  for (Index gi = 0; gi < num_graphs; ++gi) {
    const auto g = static_cast<std::size_t>(gi);
    const model::TaskGraph& tg = config.task_graph(gi);
    layout.models.push_back(build_srdf_skeleton(config, gi));
    const SrdfModel& m = layout.models.back();

    // One pinned reference per weakly connected component.
    const auto num_actors = static_cast<std::size_t>(m.graph.num_actors());
    UnionFind uf(num_actors);
    for (Index q = 0; q < m.graph.num_queues(); ++q) {
      uf.unite(static_cast<std::size_t>(m.graph.queue(q).from),
               static_cast<std::size_t>(m.graph.queue(q).to));
    }
    std::vector<bool> component_pinned(num_actors, false);
    layout.start_var[g].assign(num_actors, -1);
    for (std::size_t v = 0; v < num_actors; ++v) {
      const std::size_t root = uf.find(v);
      if (!component_pinned[root]) {
        component_pinned[root] = true;  // v becomes the component reference
      } else {
        layout.start_var[g][v] = next_var++;
      }
    }

    const auto num_tasks = static_cast<std::size_t>(tg.num_tasks());
    layout.beta_var[g].assign(num_tasks, -1);
    layout.lambda_var[g].assign(num_tasks, -1);
    if (budgets_fixed) {
      const Vector& fixed = (*options.fixed_budgets)[g];
      BBS_REQUIRE(fixed.size() == num_tasks,
                  "build_algorithm1: fixed budget count mismatch");
      layout.fixed_budget_values[g] = fixed;
      for (double beta : fixed) {
        if (!(beta > 0.0)) {
          throw ModelError("build_algorithm1: fixed budgets must be positive");
        }
      }
    } else {
      for (std::size_t t = 0; t < num_tasks; ++t) {
        layout.beta_var[g][t] = next_var++;
        layout.lambda_var[g][t] = next_var++;
      }
    }

    const auto num_buffers = static_cast<std::size_t>(tg.num_buffers());
    layout.delta_var[g].assign(num_buffers, -1);
    if (deltas_fixed) {
      const Vector& fixed = (*options.fixed_deltas)[g];
      BBS_REQUIRE(fixed.size() == num_buffers,
                  "build_algorithm1: fixed delta count mismatch");
      layout.fixed_delta_values[g] = fixed;
      for (double d : fixed) {
        if (d < 0.0) {
          throw ModelError("build_algorithm1: fixed deltas must be >= 0");
        }
      }
    } else {
      for (std::size_t b = 0; b < num_buffers; ++b) {
        layout.delta_var[g][b] = next_var++;
      }
    }
  }
  layout.num_vars = next_var;

  solver::ConicProblemBuilder builder(next_var);

  // ---- Objective (5): sum a(w) beta'(w) + sum b(e) zeta(e) delta'(e) --------
  for (Index gi = 0; gi < num_graphs; ++gi) {
    const auto g = static_cast<std::size_t>(gi);
    const model::TaskGraph& tg = config.task_graph(gi);
    for (Index t = 0; t < tg.num_tasks(); ++t) {
      const Index var = layout.beta_var[g][static_cast<std::size_t>(t)];
      if (var >= 0) builder.set_objective(var, tg.task(t).budget_weight);
    }
    for (Index b = 0; b < tg.num_buffers(); ++b) {
      const Index var = layout.delta_var[g][static_cast<std::size_t>(b)];
      if (var >= 0) {
        const model::Buffer& buf = tg.buffer(b);
        builder.set_objective(
            var, buf.size_weight * static_cast<double>(buf.container_size));
      }
    }
  }

  // ---- LP rows --------------------------------------------------------------
  for (Index gi = 0; gi < num_graphs; ++gi) {
    const auto g = static_cast<std::size_t>(gi);
    const model::TaskGraph& tg = config.task_graph(gi);
    const SrdfModel& m = layout.models[g];
    const double mu = tg.required_period();

    for (Index t = 0; t < tg.num_tasks(); ++t) {
      const auto ti = static_cast<std::size_t>(t);
      const model::Task& task = tg.task(t);
      const double rho = config.processor(task.processor).replenishment_interval;
      const Index s1 = layout.start_var[g][static_cast<std::size_t>(
          m.wait_actor[ti])];
      const Index s2 = layout.start_var[g][static_cast<std::size_t>(
          m.exec_actor[ti])];
      const Index beta = layout.beta_var[g][ti];
      const Index lambda = layout.lambda_var[g][ti];
      const double fixed_beta =
          budgets_fixed ? layout.fixed_budget_values[g][ti] : 0.0;

      // (6) for e_i1i2 (E1, zero tokens): s2 >= s1 + rho - beta'.
      {
        Terms terms;
        add_term(terms, s1, 1.0);
        add_term(terms, s2, -1.0);
        double rhs = -rho;
        if (beta >= 0) {
          add_term(terms, beta, -1.0);
        } else {
          rhs += fixed_beta;  // constant -(rho - beta)
        }
        builder.add_inequality(terms, rhs);
      }

      // (7) for the self-loop e_i2i2 (E2, one token):
      // rho*chi*lambda <= mu  (start times cancel).
      {
        Terms terms;
        double rhs = mu;
        if (lambda >= 0) {
          add_term(terms, lambda, rho * task.wcet);
        } else {
          rhs -= rho * task.wcet / fixed_beta;
        }
        builder.add_inequality(terms, rhs);
      }
    }

    for (Index b = 0; b < tg.num_buffers(); ++b) {
      const auto bi = static_cast<std::size_t>(b);
      const model::Buffer& buf = tg.buffer(b);
      const model::Task& prod = tg.task(buf.producer);
      const model::Task& cons = tg.task(buf.consumer);
      const double rho_p =
          config.processor(prod.processor).replenishment_interval;
      const double rho_c =
          config.processor(cons.processor).replenishment_interval;

      const Index s_prod_exec = layout.start_var[g][static_cast<std::size_t>(
          m.exec_actor[static_cast<std::size_t>(buf.producer)])];
      const Index s_prod_wait = layout.start_var[g][static_cast<std::size_t>(
          m.wait_actor[static_cast<std::size_t>(buf.producer)])];
      const Index s_cons_exec = layout.start_var[g][static_cast<std::size_t>(
          m.exec_actor[static_cast<std::size_t>(buf.consumer)])];
      const Index s_cons_wait = layout.start_var[g][static_cast<std::size_t>(
          m.wait_actor[static_cast<std::size_t>(buf.consumer)])];
      const Index lambda_p =
          layout.lambda_var[g][static_cast<std::size_t>(buf.producer)];
      const Index lambda_c =
          layout.lambda_var[g][static_cast<std::size_t>(buf.consumer)];
      const Index delta = layout.delta_var[g][bi];

      // (7) data queue (E2): s(cons.wait) >= s(prod.exec)
      //     + rho_p*chi_p*lambda_p - iota*mu.
      {
        Terms terms;
        add_term(terms, s_prod_exec, 1.0);
        add_term(terms, s_cons_wait, -1.0);
        double rhs = static_cast<double>(buf.initial_fill) * mu;
        if (lambda_p >= 0) {
          add_term(terms, lambda_p, rho_p * prod.wcet);
        } else {
          rhs -= rho_p * prod.wcet /
                 layout.fixed_budget_values[g][static_cast<std::size_t>(
                     buf.producer)];
        }
        builder.add_inequality(terms, rhs);
      }

      // (7) space queue (E2): s(prod.wait) >= s(cons.exec)
      //     + rho_c*chi_c*lambda_c - delta'*mu.
      {
        Terms terms;
        add_term(terms, s_cons_exec, 1.0);
        add_term(terms, s_prod_wait, -1.0);
        double rhs = 0.0;
        if (lambda_c >= 0) {
          add_term(terms, lambda_c, rho_c * cons.wcet);
        } else {
          rhs -= rho_c * cons.wcet /
                 layout.fixed_budget_values[g][static_cast<std::size_t>(
                     buf.consumer)];
        }
        if (delta >= 0) {
          add_term(terms, delta, -mu);
        } else {
          rhs += layout.fixed_delta_values[g][bi] * mu;
        }
        builder.add_inequality(terms, rhs);
      }

      if (delta >= 0) {
        // delta' >= 0.
        builder.add_inequality({{delta, -1.0}}, 0.0);
        // Optional capacity cap: iota + delta' <= max_capacity.
        if (buf.max_capacity != -1) {
          builder.add_inequality(
              {{delta, 1.0}},
              static_cast<double>(buf.max_capacity - buf.initial_fill));
        }
      }
    }
  }

  // (9) per processor: sum over tasks on p of (beta' + g) <= rho(p) - o(p).
  for (Index p = 0; p < config.num_processors(); ++p) {
    Terms terms;
    double rhs = config.processor(p).replenishment_interval -
                 config.processor(p).scheduling_overhead;
    Index tasks_on_p = 0;
    for (Index gi = 0; gi < num_graphs; ++gi) {
      const auto g = static_cast<std::size_t>(gi);
      const model::TaskGraph& tg = config.task_graph(gi);
      for (Index t = 0; t < tg.num_tasks(); ++t) {
        if (tg.task(t).processor != p) continue;
        ++tasks_on_p;
        rhs -= static_cast<double>(config.granularity());
        const Index beta = layout.beta_var[g][static_cast<std::size_t>(t)];
        if (beta >= 0) {
          add_term(terms, beta, 1.0);
        } else {
          rhs -= layout.fixed_budget_values[g][static_cast<std::size_t>(t)];
        }
      }
    }
    if (tasks_on_p > 0) builder.add_inequality(terms, rhs);
  }

  // (10) per memory: sum over buffers in m of (iota + delta' + 1)*zeta
  //      <= sigma(m).
  for (Index mem = 0; mem < config.num_memories(); ++mem) {
    if (config.memory(mem).capacity == -1.0) continue;
    Terms terms;
    double rhs = config.memory(mem).capacity;
    Index buffers_in_m = 0;
    for (Index gi = 0; gi < num_graphs; ++gi) {
      const auto g = static_cast<std::size_t>(gi);
      const model::TaskGraph& tg = config.task_graph(gi);
      for (Index b = 0; b < tg.num_buffers(); ++b) {
        const model::Buffer& buf = tg.buffer(b);
        if (buf.memory != mem) continue;
        ++buffers_in_m;
        const double zeta = static_cast<double>(buf.container_size);
        rhs -= zeta * static_cast<double>(buf.initial_fill + 1);
        const Index delta = layout.delta_var[g][static_cast<std::size_t>(b)];
        if (delta >= 0) {
          add_term(terms, delta, zeta);
        } else {
          rhs -= zeta * layout.fixed_delta_values[g][static_cast<std::size_t>(b)];
        }
      }
    }
    if (buffers_in_m > 0) builder.add_inequality(terms, rhs);
  }

  // ---- (8) SOC blocks: (lambda + beta', lambda - beta', 2) in SOC3 ----------
  if (!budgets_fixed) {
    for (Index gi = 0; gi < num_graphs; ++gi) {
      const auto g = static_cast<std::size_t>(gi);
      const model::TaskGraph& tg = config.task_graph(gi);
      for (Index t = 0; t < tg.num_tasks(); ++t) {
        const Index beta = layout.beta_var[g][static_cast<std::size_t>(t)];
        const Index lambda = layout.lambda_var[g][static_cast<std::size_t>(t)];
        builder.begin_soc(3);
        builder.soc_row({{lambda, -1.0}, {beta, -1.0}}, 0.0);
        builder.soc_row({{lambda, -1.0}, {beta, 1.0}}, 0.0);
        builder.soc_row({}, 2.0);
      }
    }
  }

  return BuiltProgram{builder.build(), std::move(layout)};
}

}  // namespace bbs::core
