// Post-rounding integer refinement.
//
// Conservative rounding (Section IV) can overshoot the integer optimum by
// up to one granule per budget and one container per buffer. Because
// feasibility is monotone in every budget and capacity, a greedy descent
// that repeatedly decrements the most expensive resource while the MCR and
// platform checks still pass recovers most of that gap — at the price of
// one MCR evaluation per attempted decrement. The result is still verified:
// every accepted allocation passes the same independent checks as the
// rounded one.
//
// The ablation bench bench_ablation_rounding shows the effect against the
// exhaustive integer reference.
#pragma once

#include "bbs/core/solver_session.hpp"

namespace bbs::core {

struct RefinementStats {
  int budget_decrements = 0;    ///< granules removed across all tasks
  int capacity_decrements = 0;  ///< containers removed across all buffers
  double cost_before = 0.0;
  double cost_after = 0.0;
};

/// Greedily decrements budgets (by the granularity g) and capacities (by
/// one container) of a feasible mapping while all graphs keep MCR <= mu and
/// the platform constraints hold. `result` is updated in place (budgets,
/// capacities, rounded objective, verification data).
RefinementStats refine_rounded_mapping(const model::Configuration& config,
                                       MappingResult& result);

/// Session flavour: refines a mapping produced by `session.solve()` against
/// the session's *internal* configuration copy — the one carrying all
/// in-place parameter updates (caps, periods). Refining a session result
/// against the caller's original configuration would silently verify stale
/// constraints.
RefinementStats refine_rounded_mapping(const SolverSession& session,
                                       MappingResult& result);

}  // namespace bbs::core
