#include "bbs/core/refinement.hpp"

#include <algorithm>

#include "bbs/common/assert.hpp"
#include "bbs/core/rounding.hpp"

namespace bbs::core {

namespace {

struct Resource {
  Index graph;
  Index index;     ///< task or buffer index within the graph
  bool is_budget;  ///< true: budget (step g), false: capacity (step 1)
  double step_cost;
};

double weighted_cost(const model::Configuration& config,
                     const std::vector<Vector>& budgets,
                     const std::vector<std::vector<Index>>& caps) {
  double cost = 0.0;
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    const model::TaskGraph& tg = config.task_graph(gi);
    const auto g = static_cast<std::size_t>(gi);
    for (Index t = 0; t < tg.num_tasks(); ++t) {
      cost += tg.task(t).budget_weight *
              budgets[g][static_cast<std::size_t>(t)];
    }
    for (Index b = 0; b < tg.num_buffers(); ++b) {
      const model::Buffer& buf = tg.buffer(b);
      cost += buf.size_weight * static_cast<double>(buf.container_size) *
              static_cast<double>(caps[g][static_cast<std::size_t>(b)] -
                                  buf.initial_fill);
    }
  }
  return cost;
}

bool all_feasible(const model::Configuration& config,
                  const std::vector<Vector>& budgets,
                  const std::vector<std::vector<Index>>& caps) {
  if (!verify_platform(config, budgets, caps)) return false;
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    const auto g = static_cast<std::size_t>(gi);
    if (!verify_graph(config, gi, budgets[g], caps[g]).throughput_met) {
      return false;
    }
  }
  return true;
}

}  // namespace

RefinementStats refine_rounded_mapping(const model::Configuration& config,
                                       MappingResult& result) {
  BBS_REQUIRE(result.feasible(),
              "refine_rounded_mapping: mapping must be feasible");
  const Index g_step = config.granularity();

  // Working copies of the integer allocation.
  std::vector<Vector> budgets;
  std::vector<std::vector<Index>> caps;
  for (std::size_t gi = 0; gi < result.graphs.size(); ++gi) {
    Vector b;
    std::vector<Index> c;
    for (const auto& t : result.graphs[gi].tasks) {
      b.push_back(static_cast<double>(t.budget));
    }
    for (const auto& buf : result.graphs[gi].buffers) c.push_back(buf.capacity);
    budgets.push_back(std::move(b));
    caps.push_back(std::move(c));
  }

  RefinementStats stats;
  stats.cost_before = weighted_cost(config, budgets, caps);

  // Candidate resources, most expensive decrement first (stable across
  // rounds; costs do not change).
  std::vector<Resource> resources;
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    const model::TaskGraph& tg = config.task_graph(gi);
    for (Index t = 0; t < tg.num_tasks(); ++t) {
      resources.push_back(Resource{gi, t, true,
                                   tg.task(t).budget_weight *
                                       static_cast<double>(g_step)});
    }
    for (Index b = 0; b < tg.num_buffers(); ++b) {
      resources.push_back(Resource{
          gi, b, false,
          tg.buffer(b).size_weight *
              static_cast<double>(tg.buffer(b).container_size)});
    }
  }
  std::sort(resources.begin(), resources.end(),
            [](const Resource& a, const Resource& b) {
              return a.step_cost > b.step_cost;
            });

  bool improved = true;
  while (improved) {
    improved = false;
    for (const Resource& r : resources) {
      const auto g = static_cast<std::size_t>(r.graph);
      if (r.is_budget) {
        const auto t = static_cast<std::size_t>(r.index);
        if (budgets[g][t] - static_cast<double>(g_step) <
            static_cast<double>(g_step) - 1e-9) {
          continue;  // budgets stay >= one granule
        }
        budgets[g][t] -= static_cast<double>(g_step);
        if (all_feasible(config, budgets, caps)) {
          ++stats.budget_decrements;
          improved = true;
        } else {
          budgets[g][t] += static_cast<double>(g_step);
        }
      } else {
        const auto b = static_cast<std::size_t>(r.index);
        const model::Buffer& buf =
            config.task_graph(r.graph).buffer(r.index);
        const Index floor_cap = std::max<Index>(1, buf.initial_fill);
        if (caps[g][b] <= floor_cap) continue;
        --caps[g][b];
        if (all_feasible(config, budgets, caps)) {
          ++stats.capacity_decrements;
          improved = true;
        } else {
          ++caps[g][b];
        }
      }
    }
  }

  stats.cost_after = weighted_cost(config, budgets, caps);

  // Write the refined allocation back, re-verifying per graph.
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    const auto g = static_cast<std::size_t>(gi);
    MappedGraph& mg = result.graphs[g];
    for (std::size_t t = 0; t < mg.tasks.size(); ++t) {
      mg.tasks[t].budget = static_cast<Index>(budgets[g][t]);
    }
    for (std::size_t b = 0; b < mg.buffers.size(); ++b) {
      mg.buffers[b].capacity = caps[g][b];
    }
    mg.verification = verify_graph(config, gi, budgets[g], caps[g]);
  }
  result.objective_rounded = stats.cost_after;
  return stats;
}

RefinementStats refine_rounded_mapping(const SolverSession& session,
                                       MappingResult& result) {
  return refine_rounded_mapping(session.config(), result);
}

}  // namespace bbs::core
