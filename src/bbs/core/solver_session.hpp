// Warm-started solver sessions for repeated solves of one problem
// structure.
//
// The drivers the paper evaluates — the capacity trade-off sweep and the
// throughput binary search — solve the *same* Algorithm-1 program dozens of
// times with only a handful of bound/rhs entries changed between solves.
// A SolverSession amortises everything that is structure-bound across those
// solves, in three layers:
//
//   1. the conic program is built once; parameter changes (buffer capacity
//      caps, target periods, fixed phase-1 budgets/deltas) mutate only the
//      affected h entries and -mu coefficients in place (ProgramRowMap);
//   2. the interior-point solver runs through a persistent IpmWorkspace, so
//      the KKT system — including its one-time symbolic factorisation —
//      the Ruiz scaling buffers and all iterate vectors survive across
//      solves (KktSystem::stats().symbolic_factorisations == 1 for the
//      whole session);
//   3. each solve is warm-started from the previous optimal point, pushed
//      back into the cone interior (falls back to a cold start after an
//      infeasible solve).
//
// The session owns a private copy of the configuration: parameter setters
// mutate the copy and the program in lockstep, and the caller's
// configuration is never touched.
#pragma once

#include "bbs/core/budget_buffer_solver.hpp"

namespace bbs::core {

struct SessionOptions {
  /// Per-solve options (IPM, rounding, verification). Warm starting is
  /// controlled by mapping.ipm.warm_start.
  MappingOptions mapping;
  /// Build-time options: fix budgets (two-phase budget-first) or deltas
  /// (two-phase buffer-first) to make the per-solve program an LP /
  /// reduced SOCP.
  BuildOptions build;
  /// Two-sided warm seeding for bisection-style drivers: keep the final
  /// iterate of the last *infeasible* solve next to the last feasible
  /// optimum, and seed each solve from whichever snapshot has the lower
  /// residual merit on the current problem data. The feasible optimum wins
  /// unless the infeasible-side iterate is strictly closer to the embedding
  /// slice the solver restarts in, so this never degrades the one-sided
  /// behaviour. Requires mapping.ipm.warm_start.
  bool two_sided_warm_seeds = true;
};

/// Per-request interruption control for a (possibly pooled) session: a
/// wall-clock budget, a shared cancellation token, and the chaos tests'
/// injected-failure hook. Installed with SolverSession::set_solve_control
/// before the request's solves and cleared afterwards, so sessions pooled
/// across requests never leak one request's deadline into the next.
struct SolveControl {
  double time_limit_ms = 0.0;  ///< per-solve budget; 0 = unlimited
  /// Absolute deadline shared by every solve of the request (sweeps and
  /// bisections spend one budget across all probes); max() = none.
  solver::CancelToken::Clock::time_point deadline =
      solver::CancelToken::Clock::time_point::max();
  std::shared_ptr<solver::CancelToken> cancel;
  int fail_at_iteration = -1;  ///< fault injection; -1 = off
  /// Scope the injected failure to the first solve attempt only, so the
  /// recovery ladder can be observed recovering (ipm.fail_once); false
  /// keeps the classic re-firing fault (ipm.fail_at) that exhausts it.
  bool fail_only_first_attempt = false;
  /// Per-execution trace sink for IPM iteration/ladder events (request
  /// tracing); not owned, must outlive the request. nullptr = no events.
  solver::IpmTraceSink* trace_sink = nullptr;
};

/// Which snapshot seeded a solve (see SolverSession::seed_stats()).
enum class SeedSide { kCold, kFeasible, kInfeasible };

/// Cumulative seed bookkeeping of one session: how often each side supplied
/// the warm start, and the interior-point iterations spent downstream of
/// each seed kind — the per-probe iteration deltas that the bisection
/// drivers' warm-start experiments compare.
struct SeedStats {
  int seeded_feasible = 0;    ///< solves seeded from the last feasible optimum
  int seeded_infeasible = 0;  ///< solves seeded from the last infeasible iterate
  int cold = 0;               ///< solves with no usable seed
  long iterations_seeded_feasible = 0;
  long iterations_seeded_infeasible = 0;
  long iterations_cold = 0;
  int last_iterations = 0;  ///< iterations of the most recent solve
  int last_feasible_updates = 0;    ///< feasible-side snapshot refreshes
  int last_infeasible_updates = 0;  ///< infeasible-side snapshot refreshes
};

class SolverSession {
 public:
  /// Builds the Algorithm-1 program for `config` once. Throws ModelError on
  /// invalid configurations. Buffers that should receive in-place cap
  /// updates later must have a finite max_capacity here (the cap row must
  /// exist in the built program).
  explicit SolverSession(const model::Configuration& config,
                         SessionOptions options = {});

  // --- In-place parameter updates ------------------------------------------
  // Each mutates the session's configuration copy and the built program in
  // lockstep; the problem structure (sparsity pattern, cone, variables) is
  // preserved, which is what keeps the workspace's symbolic factorisation
  // valid.

  /// Sets the capacity cap of one buffer (>= 1; the buffer must have been
  /// capped at construction time).
  void set_buffer_cap(Index graph, Index buffer, Index cap);
  /// Sets a common capacity cap on all buffers of a graph (the trade-off
  /// sweep's step).
  void set_all_buffer_caps(Index graph, Index cap);
  /// Sets a graph's required period mu(T) (the binary search's step).
  void set_required_period(Index graph, double period);
  /// Replaces a graph's fixed phase-1 budgets (sessions built with
  /// BuildOptions::fixed_budgets only).
  void set_fixed_budgets(Index graph, const Vector& budgets);
  /// Replaces a graph's fixed phase-1 space-token counts (sessions built
  /// with BuildOptions::fixed_deltas only).
  void set_fixed_deltas(Index graph, const Vector& deltas);

  /// Installs per-request interruption control (deadline, cancel token,
  /// injected failure) for subsequent solve() calls. An interrupted solve
  /// reports kTimedOut/kCancelled through the MappingResult and refreshes
  /// no warm snapshot — the program, workspace and symbolic factorisation
  /// stay valid, so the session remains fully reusable afterwards.
  void set_solve_control(const SolveControl& control);
  /// Restores the session's base solver options (no deadline, no token).
  void clear_solve_control();

  /// Solves the current program through the persistent workspace and runs
  /// the usual rounding + verification tail. Equivalent (up to solver
  /// tolerances) to compute_budgets_and_buffers on the mutated
  /// configuration, but without any per-solve setup.
  MappingResult solve();

  /// The session's configuration copy (reflects all parameter updates).
  const model::Configuration& config() const { return config_; }
  const BuiltProgram& program() const { return program_; }
  /// Persistent solver state; workspace().kkt()->stats() exposes the
  /// symbolic-reuse invariant, workspace().total_iterations() the
  /// cumulative IPM effort.
  const solver::IpmWorkspace& workspace() const { return workspace_; }
  int solves() const { return workspace_.solves(); }
  long total_ipm_iterations() const { return workspace_.total_iterations(); }

  /// The options this session was constructed with (structure cache: the
  /// build/mapping options are part of the persisted session payload).
  const SessionOptions& options() const { return options_; }

  /// Offers a cached KKT symbolic analysis for the first solve (persistent
  /// structure cache pre-warm). Validated inside the solver; a mismatched
  /// hint falls back to a full derivation, never an error.
  void seed_symbolic(solver::SymbolicAnalysis analysis) {
    workspace_.seed_symbolic(std::move(analysis));
  }
  /// Exports the KKT symbolic analysis after the first solve.
  std::optional<solver::SymbolicAnalysis> export_symbolic() const {
    return workspace_.export_symbolic();
  }
  /// Two-sided seed counters (zeroed at construction).
  const SeedStats& seed_stats() const { return seed_stats_; }
  /// True once a feasible / infeasible solve has stocked the matching
  /// snapshot.
  bool has_feasible_seed() const { return last_feasible_.valid; }
  bool has_infeasible_seed() const { return last_infeasible_.valid; }

 private:
  struct Snapshot {
    bool valid = false;
    Vector x, s, z;
  };

  /// Residual merit of a snapshot on the *current* problem data: how far
  /// the point is from the tau = 1 embedding slice the solver restarts in.
  double seed_merit(const Snapshot& snap) const;
  /// Picks and installs the seed for the next solve; returns the side used.
  SeedSide select_seed();

  SessionOptions options_;
  model::Configuration config_;
  BuiltProgram program_;
  solver::IpmSolver ipm_;
  solver::IpmWorkspace workspace_;
  Snapshot last_feasible_;
  Snapshot last_infeasible_;
  /// Whether the workspace's warm slot currently holds last_feasible_ (the
  /// auto-stored optimum) as opposed to an installed infeasible-side seed.
  bool warm_slot_is_feasible_ = true;
  SeedStats seed_stats_;
};

}  // namespace bbs::core
