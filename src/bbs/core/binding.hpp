// Task-to-processor binding on top of the joint budget/buffer computation.
//
// The paper's conclusion names this as the essential next step: "extend the
// current formulation and also compute the binding of tasks to processors".
// Binding is a combinatorial choice outside the cone program, so this module
// wraps Algorithm 1 in a search over assignments:
//
//   * kExhaustive — enumerate all |P|^|W| assignments (small instances; the
//     reference for the heuristic),
//   * kGreedyLocalSearch — start from a load-balanced greedy assignment,
//     then iterate single-task moves while the weighted objective improves
//     (or feasibility is restored).
//
// Each candidate binding is evaluated by the full joint SOCP, so the search
// sees exactly the cost the mapping flow cares about — including the
// budget/buffer trade-off the binding influences.
#pragma once

#include <optional>

#include "bbs/core/budget_buffer_solver.hpp"

namespace bbs::core {

enum class BindingStrategy {
  kExhaustive,
  kGreedyLocalSearch,
};

struct BindingOptions {
  BindingStrategy strategy = BindingStrategy::kGreedyLocalSearch;
  /// Exhaustive search refuses instances with more than this many
  /// assignments.
  std::size_t max_assignments = 200000;
  /// Local-search rounds (each round tries every single-task move).
  int max_rounds = 20;
  MappingOptions mapping;
};

struct BindingResult {
  /// processor[graph][task] — the chosen binding.
  std::vector<std::vector<Index>> processors;
  /// Joint solve result under that binding.
  MappingResult mapping;
  /// Number of candidate bindings evaluated with the SOCP.
  int evaluated = 0;
};

/// Computes a task-to-processor binding (ignoring the bindings already in
/// `config`) plus budgets and buffer sizes. Returns nullopt if no evaluated
/// binding is feasible.
std::optional<BindingResult> bind_and_solve(
    const model::Configuration& config, const BindingOptions& options = {});

}  // namespace bbs::core
