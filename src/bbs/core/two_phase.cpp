#include "bbs/core/two_phase.hpp"

#include <algorithm>

#include "bbs/common/assert.hpp"
#include "bbs/core/rounding.hpp"

namespace bbs::core {

MappingResult solve_budget_first(const model::Configuration& config,
                                 const MappingOptions& options) {
  config.validate();
  // Phase 1: per-task minimal budgets from the self-loop cycle of the task
  // model: rho(p)*chi(w)/beta <= mu(T)  =>  beta >= rho(p)*chi(w)/mu(T).
  std::vector<Vector> budgets;
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    const model::TaskGraph& tg = config.task_graph(gi);
    Vector beta(static_cast<std::size_t>(tg.num_tasks()), 0.0);
    for (Index t = 0; t < tg.num_tasks(); ++t) {
      const model::Task& task = tg.task(t);
      const double rho =
          config.processor(task.processor).replenishment_interval;
      const double minimal = rho * task.wcet / tg.required_period();
      // Commit the rounded (deployable) budget before phase 2, exactly as a
      // staged mapping flow would.
      beta[static_cast<std::size_t>(t)] = static_cast<double>(
          round_budget(minimal, config.granularity(), options.rounding_eps));
    }
    budgets.push_back(std::move(beta));
  }

  BuildOptions build;
  build.fixed_budgets = budgets;
  const BuiltProgram program = build_algorithm1(config, build);
  return solve_built_program(config, program, options);
}

MappingResult solve_buffer_first(const model::Configuration& config,
                                 Index default_capacity,
                                 const MappingOptions& options) {
  config.validate();
  BBS_REQUIRE(default_capacity >= 1,
              "solve_buffer_first: capacity must be >= 1");
  // Phase 1: commit buffer capacities. The space queue of buffer b then
  // carries gamma - iota tokens.
  std::vector<Vector> deltas;
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    const model::TaskGraph& tg = config.task_graph(gi);
    Vector d(static_cast<std::size_t>(tg.num_buffers()), 0.0);
    for (Index b = 0; b < tg.num_buffers(); ++b) {
      const model::Buffer& buf = tg.buffer(b);
      Index gamma = default_capacity;
      if (buf.max_capacity != -1) gamma = std::min(gamma, buf.max_capacity);
      gamma = std::max(gamma, std::max<Index>(1, buf.initial_fill));
      d[static_cast<std::size_t>(b)] =
          static_cast<double>(gamma - buf.initial_fill);
    }
    deltas.push_back(std::move(d));
  }

  BuildOptions build;
  build.fixed_deltas = deltas;
  const BuiltProgram program = build_algorithm1(config, build);
  return solve_built_program(config, program, options);
}

}  // namespace bbs::core
