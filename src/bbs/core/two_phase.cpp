#include "bbs/core/two_phase.hpp"

#include <algorithm>

#include "bbs/common/assert.hpp"
#include "bbs/core/rounding.hpp"

namespace bbs::core {

std::vector<Vector> budget_first_budgets(const model::Configuration& config,
                                         double rounding_eps) {
  // Phase 1: per-task minimal budgets from the self-loop cycle of the task
  // model: rho(p)*chi(w)/beta <= mu(T)  =>  beta >= rho(p)*chi(w)/mu(T).
  std::vector<Vector> budgets;
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    const model::TaskGraph& tg = config.task_graph(gi);
    Vector beta(static_cast<std::size_t>(tg.num_tasks()), 0.0);
    for (Index t = 0; t < tg.num_tasks(); ++t) {
      const model::Task& task = tg.task(t);
      const double rho =
          config.processor(task.processor).replenishment_interval;
      const double minimal = rho * task.wcet / tg.required_period();
      // Commit the rounded (deployable) budget before phase 2, exactly as a
      // staged mapping flow would.
      beta[static_cast<std::size_t>(t)] = static_cast<double>(
          round_budget(minimal, config.granularity(), rounding_eps));
    }
    budgets.push_back(std::move(beta));
  }
  return budgets;
}

std::vector<Vector> buffer_first_deltas(const model::Configuration& config,
                                        Index default_capacity) {
  BBS_REQUIRE(default_capacity >= 1,
              "buffer_first_deltas: capacity must be >= 1");
  // Phase 1: commit buffer capacities. The space queue of buffer b then
  // carries gamma - iota tokens.
  std::vector<Vector> deltas;
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    const model::TaskGraph& tg = config.task_graph(gi);
    Vector d(static_cast<std::size_t>(tg.num_buffers()), 0.0);
    for (Index b = 0; b < tg.num_buffers(); ++b) {
      const model::Buffer& buf = tg.buffer(b);
      Index gamma = default_capacity;
      if (buf.max_capacity != -1) gamma = std::min(gamma, buf.max_capacity);
      gamma = std::max(gamma, std::max<Index>(1, buf.initial_fill));
      d[static_cast<std::size_t>(b)] =
          static_cast<double>(gamma - buf.initial_fill);
    }
    deltas.push_back(std::move(d));
  }
  return deltas;
}

MappingResult solve_budget_first(const model::Configuration& config,
                                 const MappingOptions& options) {
  config.validate();
  BuildOptions build;
  build.fixed_budgets = budget_first_budgets(config, options.rounding_eps);
  const BuiltProgram program = build_algorithm1(config, build);
  return solve_built_program(config, program, options);
}

MappingResult solve_buffer_first(const model::Configuration& config,
                                 Index default_capacity,
                                 const MappingOptions& options) {
  config.validate();
  BuildOptions build;
  build.fixed_deltas = buffer_first_deltas(config, default_capacity);
  const BuiltProgram program = build_algorithm1(config, build);
  return solve_built_program(config, program, options);
}

std::vector<MappingResult> sweep_buffer_first(
    const model::Configuration& config, Index cap_lo, Index cap_hi,
    const MappingOptions& options) {
  BBS_REQUIRE(cap_lo >= 1 && cap_hi >= cap_lo,
              "sweep_buffer_first: need 1 <= cap_lo <= cap_hi");
  config.validate();

  SessionOptions session_options;
  session_options.mapping = options;
  session_options.build.fixed_deltas = buffer_first_deltas(config, cap_lo);
  SolverSession session(config, session_options);
  return sweep_buffer_first(session, config, cap_lo, cap_hi);
}

std::vector<MappingResult> sweep_buffer_first(SolverSession& session,
                                              const model::Configuration& config,
                                              Index cap_lo, Index cap_hi) {
  BBS_REQUIRE(cap_lo >= 1 && cap_hi >= cap_lo,
              "sweep_buffer_first: need 1 <= cap_lo <= cap_hi");
  std::vector<MappingResult> results;
  results.reserve(static_cast<std::size_t>(cap_hi - cap_lo + 1));
  for (Index cap = cap_lo; cap <= cap_hi; ++cap) {
    const std::vector<Vector> deltas = buffer_first_deltas(config, cap);
    for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
      session.set_fixed_deltas(gi, deltas[static_cast<std::size_t>(gi)]);
    }
    results.push_back(session.solve());
    throw_if_interrupted(results.back());
  }
  return results;
}

std::optional<MinimalPeriodResult> minimal_feasible_period_budget_first(
    const model::Configuration& config, Index graph_index, double period_hi,
    double rel_tol, const MappingOptions& options) {
  BBS_REQUIRE(period_hi > 0.0,
              "minimal_feasible_period_budget_first: period_hi must be "
              "positive");
  BBS_REQUIRE(rel_tol > 0.0 && rel_tol < 1.0,
              "minimal_feasible_period_budget_first: rel_tol must be in "
              "(0, 1)");
  config.validate();

  // The session is built once with the phase-1 budgets at period_hi; every
  // probe re-commits the swept graph's budgets for the candidate period and
  // rewrites the period-dependent entries, all in place.
  model::Configuration at_hi_config = config;
  at_hi_config.mutable_task_graph(graph_index).set_required_period(period_hi);
  SessionOptions session_options;
  session_options.mapping = options;
  // Probes are feasibility queries; the returned mapping is verified once
  // at the end.
  session_options.mapping.verify = false;
  session_options.build.fixed_budgets =
      budget_first_budgets(at_hi_config, options.rounding_eps);
  SolverSession session(at_hi_config, session_options);
  return minimal_feasible_period_budget_first(session, graph_index, period_hi,
                                              rel_tol, options.rounding_eps,
                                              options.verify);
}

std::optional<MinimalPeriodResult> minimal_feasible_period_budget_first(
    SolverSession& session, Index graph_index, double period_hi,
    double rel_tol, double rounding_eps, bool verify_result) {
  BBS_REQUIRE(period_hi > 0.0,
              "minimal_feasible_period_budget_first: period_hi must be "
              "positive");
  BBS_REQUIRE(rel_tol > 0.0 && rel_tol < 1.0,
              "minimal_feasible_period_budget_first: rel_tol must be in "
              "(0, 1)");

  const auto solve_at = [&](double period) {
    session.set_required_period(graph_index, period);
    session.set_fixed_budgets(
        graph_index,
        budget_first_budgets(session.config(), rounding_eps)
            [static_cast<std::size_t>(graph_index)]);
    MappingResult result = session.solve();
    // Abort the bisection on a deadline/cancel; an interrupted probe is not
    // an infeasible one.
    throw_if_interrupted(result);
    return result;
  };

  MappingResult at_hi = solve_at(period_hi);
  if (!at_hi.feasible()) {
    return std::nullopt;
  }

  double lo = 0.0;
  double hi = period_hi;
  MinimalPeriodResult best;
  best.period = period_hi;
  best.mapping = std::move(at_hi);
  while (hi - lo > rel_tol * hi) {
    const double mid = 0.5 * (lo + hi);
    MappingResult r = solve_at(mid);
    if (r.feasible()) {
      hi = mid;
      best.period = mid;
      best.mapping = std::move(r);
    } else {
      lo = mid;
    }
  }
  // Re-commit the returned period's budgets so the session configuration
  // and program match the mapping handed back.
  session.set_required_period(graph_index, best.period);
  session.set_fixed_budgets(
      graph_index, budget_first_budgets(session.config(), rounding_eps)
                       [static_cast<std::size_t>(graph_index)]);
  if (verify_result) {
    verify_mapping(session.config(), best.mapping);
  }
  return best;
}

}  // namespace bbs::core
