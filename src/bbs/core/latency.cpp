#include "bbs/core/latency.hpp"

#include <algorithm>

#include "bbs/common/assert.hpp"
#include "bbs/dataflow/pas.hpp"

namespace bbs::core {

std::optional<GraphLatency> compute_latency_bounds(
    const model::Configuration& config, Index graph_index,
    const Vector& budgets, const std::vector<Index>& capacities) {
  const model::TaskGraph& tg = config.task_graph(graph_index);
  const SrdfModel m = build_srdf(config, graph_index, budgets, capacities);
  const dataflow::PasResult pas =
      dataflow::compute_pas(m.graph, tg.required_period());
  if (!pas.feasible) return std::nullopt;

  // Sources: tasks with no input buffers. Sinks: tasks with no output
  // buffers (a task can be both in a single-task graph).
  std::vector<bool> has_input(static_cast<std::size_t>(tg.num_tasks()), false);
  std::vector<bool> has_output(static_cast<std::size_t>(tg.num_tasks()),
                               false);
  for (Index b = 0; b < tg.num_buffers(); ++b) {
    has_input[static_cast<std::size_t>(tg.buffer(b).consumer)] = true;
    has_output[static_cast<std::size_t>(tg.buffer(b).producer)] = true;
  }

  GraphLatency out;
  for (Index src = 0; src < tg.num_tasks(); ++src) {
    if (has_input[static_cast<std::size_t>(src)]) continue;
    const double s_src =
        pas.start_times[static_cast<std::size_t>(
            m.wait_actor[static_cast<std::size_t>(src)])];
    for (Index snk = 0; snk < tg.num_tasks(); ++snk) {
      if (has_output[static_cast<std::size_t>(snk)]) continue;
      const auto exec = static_cast<std::size_t>(
          m.exec_actor[static_cast<std::size_t>(snk)]);
      const double finish =
          pas.start_times[exec] + m.graph.actor(m.exec_actor[
              static_cast<std::size_t>(snk)]).firing_duration;
      LatencyBound bound;
      bound.source = src;
      bound.sink = snk;
      bound.latency = finish - s_src;
      out.worst = std::max(out.worst, bound.latency);
      out.pairs.push_back(bound);
    }
  }
  return out;
}

}  // namespace bbs::core
