// End-to-end latency bounds for mapped task graphs.
//
// The paper computes budgets/buffers for a throughput constraint; a mapping
// flow also needs the resulting worst-case source-to-sink latency. With a
// PAS at period mu, the k-th execution of the sink finishes no later than
//     s(v_sink,2) + (k-1)*mu + rho(v_sink,2),
// while the k-th source input is consumed no earlier than s(v_src,1) (its
// wait actor's start). The difference
//     L = s(v_sink,2) + rho(v_sink,2) - s(v_src,1)
// bounds the latency of every iteration under self-timed execution, by the
// temporal monotonicity of the model. The start times used are the
// componentwise-least PAS (Bellman-Ford fixpoint), which gives the tightest
// bound of this form.
#pragma once

#include <optional>

#include "bbs/core/srdf_construction.hpp"

namespace bbs::core {

struct LatencyBound {
  Index source = 0;  ///< task index within the graph
  Index sink = 0;    ///< task index within the graph
  double latency = 0.0;
};

struct GraphLatency {
  /// Bound for every (source, sink) pair where source has no input buffers
  /// and sink no output buffers; empty when no PAS exists at mu.
  std::vector<LatencyBound> pairs;
  /// Largest entry of `pairs` (0 when empty).
  double worst = 0.0;
};

/// Computes latency bounds for a mapped graph. Returns nullopt when the
/// budgets/capacities do not sustain the required period (no PAS exists).
std::optional<GraphLatency> compute_latency_bounds(
    const model::Configuration& config, Index graph_index,
    const Vector& budgets, const std::vector<Index>& capacities);

}  // namespace bbs::core
