#include "bbs/core/exact_reference.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "bbs/common/assert.hpp"
#include "bbs/core/rounding.hpp"

namespace bbs::core {

namespace {

struct FlatTask {
  Index graph;
  Index task;
  Index processor;
  double weight;
  Index min_budget;  ///< granularity-rounded self-loop bound
  Index max_budget;  ///< replenishment-interval bound
};

struct FlatBuffer {
  Index graph;
  Index buffer;
  double weight_per_token;  ///< b(e) * zeta(e)
  Index cap_lo;
  Index cap_hi;
};

/// The default tolerance of verify_graph/verify_platform, which define
/// feasibility for this search; the pruning bounds below must accept
/// everything these predicates accept.
constexpr double kFeasibilityTolerance = 1e-6;

/// Full feasibility check of a concrete integer allocation.
bool feasible(const model::Configuration& config,
              const std::vector<Vector>& budgets,
              const std::vector<std::vector<Index>>& caps) {
  if (!verify_platform(config, budgets, caps)) return false;
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    const GraphVerification v =
        verify_graph(config, gi, budgets[static_cast<std::size_t>(gi)],
                     caps[static_cast<std::size_t>(gi)]);
    if (!v.throughput_met) return false;
  }
  return true;
}

}  // namespace

const char* to_string(ExactStatus status) {
  switch (status) {
    case ExactStatus::kOptimal:
      return "optimal";
    case ExactStatus::kInfeasible:
      return "infeasible";
    case ExactStatus::kTruncated:
      return "truncated";
  }
  return "unknown";
}

ExactOutcome exact_reference_outcome(const model::Configuration& config,
                                     const ExactSearchLimits& limits) {
  config.validate();
  const Index g = config.granularity();
  ExactOutcome outcome;

  std::vector<FlatTask> tasks;
  std::vector<FlatBuffer> buffers;
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    const model::TaskGraph& tg = config.task_graph(gi);
    for (Index t = 0; t < tg.num_tasks(); ++t) {
      const model::Task& task = tg.task(t);
      const model::Processor& proc = config.processor(task.processor);
      const double rho = proc.replenishment_interval;
      FlatTask ft;
      ft.graph = gi;
      ft.task = t;
      ft.processor = task.processor;
      ft.weight = task.budget_weight;
      // Self-loop pruning bound, kept consistent with feasible()'s
      // acceptance threshold: verify_graph passes an allocation when
      // MCR <= mu*(1+tol)+tol, so the floor must be computed against that
      // relaxed period. A hard ceil against exact mu would exclude
      // boundary budgets the predicate accepts (e.g. mappings returned at
      // a bisection-minimal period) and, once the raised floor
      // oversubscribes a processor, turn a boundary case into a false
      // infeasibility proof.
      const double mu = tg.required_period();
      const double mu_relaxed = mu * (1.0 + kFeasibilityTolerance) +
                                kFeasibilityTolerance;
      ft.min_budget = round_budget(rho * task.wcet / mu_relaxed, g);
      ft.max_budget =
          (static_cast<Index>(rho - proc.scheduling_overhead) / g) * g;
      if (ft.max_budget < ft.min_budget) {
        // The task's self-loop bound exceeds what one replenishment interval
        // can ever grant — a property of the configuration alone, so this is
        // a complete infeasibility proof, not a truncation.
        outcome.status = ExactStatus::kInfeasible;
        return outcome;
      }
      tasks.push_back(ft);
    }
    for (Index b = 0; b < tg.num_buffers(); ++b) {
      const model::Buffer& buf = tg.buffer(b);
      FlatBuffer fb;
      fb.graph = gi;
      fb.buffer = b;
      fb.weight_per_token =
          buf.size_weight * static_cast<double>(buf.container_size);
      fb.cap_lo = std::max<Index>(1, buf.initial_fill);
      fb.cap_hi = limits.max_capacity;
      if (buf.max_capacity != -1) fb.cap_hi = std::min(fb.cap_hi,
                                                       buf.max_capacity);
      if (buf.max_capacity == -1 || buf.max_capacity > limits.max_capacity) {
        // The search ceiling, not the model, bounds this buffer.
        outcome.capacity_limited = true;
      }
      if (fb.cap_hi < fb.cap_lo) {
        if (buf.max_capacity != -1 && buf.max_capacity < fb.cap_lo) {
          // The model's own capacity bound is below the initial fill — no
          // allocation can exist regardless of the search limits.
          outcome.status = ExactStatus::kInfeasible;
        } else {
          // Only limits.max_capacity clipped below cap_lo: unanswerable
          // within the given ceiling.
          outcome.status = ExactStatus::kTruncated;
        }
        return outcome;
      }
      buffers.push_back(fb);
    }
  }
  BBS_REQUIRE(!tasks.empty(), "exact_reference: configuration has no tasks");

  // Estimated search-space size (capacity odometer x budget odometer over
  // all tasks except the last, which is binary-searched).
  double combos = 1.0;
  for (const FlatBuffer& fb : buffers) {
    combos *= static_cast<double>(fb.cap_hi - fb.cap_lo + 1);
  }
  for (std::size_t i = 0; i + 1 < tasks.size(); ++i) {
    combos *= static_cast<double>(
        (tasks[i].max_budget - tasks[i].min_budget) / g + 1);
  }
  outcome.estimated_combinations = combos;
  if (combos > static_cast<double>(limits.max_combinations)) {
    outcome.search_space_exceeded = true;
    outcome.status = ExactStatus::kTruncated;
    return outcome;
  }

  // Working allocation.
  std::vector<Vector> budgets;
  std::vector<std::vector<Index>> caps;
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    const model::TaskGraph& tg = config.task_graph(gi);
    budgets.emplace_back(static_cast<std::size_t>(tg.num_tasks()), 0.0);
    caps.emplace_back(static_cast<std::size_t>(tg.num_buffers()), 1);
  }

  std::optional<ExactSolution> best;

  // Odometers.
  std::vector<Index> cap_state(buffers.size());
  for (std::size_t i = 0; i < buffers.size(); ++i)
    cap_state[i] = buffers[i].cap_lo;
  std::vector<Index> bud_state(tasks.size());

  const auto set_caps = [&]() {
    for (std::size_t i = 0; i < buffers.size(); ++i) {
      caps[static_cast<std::size_t>(buffers[i].graph)]
          [static_cast<std::size_t>(buffers[i].buffer)] = cap_state[i];
    }
  };
  const auto set_budget = [&](std::size_t i, Index value) {
    bud_state[i] = value;
    budgets[static_cast<std::size_t>(tasks[i].graph)]
           [static_cast<std::size_t>(tasks[i].task)] =
               static_cast<double>(value);
  };

  const std::size_t last = tasks.size() - 1;
  bool caps_done = false;
  while (!caps_done) {
    set_caps();

    // Budget odometer over tasks[0..last-1].
    for (std::size_t i = 0; i < last; ++i) set_budget(i, tasks[i].min_budget);
    bool budgets_done = false;
    while (!budgets_done) {
      // Binary search the minimal feasible budget of the last task on the
      // granularity grid. Graph feasibility (MCR) is monotone in the
      // budget, but the per-processor budget-sum constraint is
      // anti-monotone — probing the interval bound itself would wrongly
      // discard combinations whose remaining headroom is smaller. Clamp
      // the upper probe to the headroom the already-fixed budgets leave on
      // the last task's processor (with verify_platform's tolerance), so
      // the platform constraint holds across the whole searched range.
      const model::Processor& lproc =
          config.processor(tasks[last].processor);
      double others = lproc.scheduling_overhead;
      for (std::size_t i = 0; i < last; ++i) {
        if (tasks[i].processor == tasks[last].processor) {
          others += static_cast<double>(bud_state[i]);
        }
      }
      const double headroom = lproc.replenishment_interval +
                              kFeasibilityTolerance - others;
      const Index hi_budget = std::min(
          tasks[last].max_budget,
          static_cast<Index>(std::floor(
              headroom / static_cast<double>(g))) * g);
      if (hi_budget < tasks[last].min_budget) {
        // No budget of the last task can both clear its self-loop bound
        // and fit the processor — this combination is infeasible.
        budgets_done = true;
        for (std::size_t i = 0; i < last; ++i) {
          if (bud_state[i] + g <= tasks[i].max_budget) {
            set_budget(i, bud_state[i] + g);
            for (std::size_t j = 0; j < i; ++j)
              set_budget(j, tasks[j].min_budget);
            budgets_done = false;
            break;
          }
        }
        continue;
      }
      Index lo = tasks[last].min_budget / g;
      Index hi = hi_budget / g;
      set_budget(last, hi * g);
      if (feasible(config, budgets, caps)) {
        while (lo < hi) {
          const Index mid = lo + (hi - lo) / 2;
          set_budget(last, mid * g);
          if (feasible(config, budgets, caps)) {
            hi = mid;
          } else {
            lo = mid + 1;
          }
        }
        set_budget(last, hi * g);

        double cost = 0.0;
        for (std::size_t i = 0; i < tasks.size(); ++i) {
          cost += tasks[i].weight * static_cast<double>(bud_state[i]);
        }
        for (std::size_t i = 0; i < buffers.size(); ++i) {
          const model::Buffer& buf =
              config.task_graph(buffers[i].graph).buffer(buffers[i].buffer);
          cost += buffers[i].weight_per_token *
                  static_cast<double>(cap_state[i] - buf.initial_fill);
        }
        if (!best || cost < best->cost - 1e-12) {
          best = ExactSolution{cost, budgets, caps};
        }
      }

      // Advance the budget odometer.
      budgets_done = true;
      for (std::size_t i = 0; i < last; ++i) {
        if (bud_state[i] + g <= tasks[i].max_budget) {
          set_budget(i, bud_state[i] + g);
          for (std::size_t j = 0; j < i; ++j)
            set_budget(j, tasks[j].min_budget);
          budgets_done = false;
          break;
        }
      }
    }

    // Advance the capacity odometer.
    caps_done = true;
    for (std::size_t i = 0; i < buffers.size(); ++i) {
      if (cap_state[i] < buffers[i].cap_hi) {
        ++cap_state[i];
        for (std::size_t j = 0; j < i; ++j) cap_state[j] = buffers[j].cap_lo;
        caps_done = false;
        break;
      }
    }
  }

  if (best.has_value()) {
    outcome.status = ExactStatus::kOptimal;
    outcome.solution = std::move(best);
  } else if (outcome.capacity_limited) {
    // The exhausted search ran under a ceiling tighter than the model's
    // own bounds — a feasible allocation may live just beyond it.
    outcome.status = ExactStatus::kTruncated;
  } else {
    outcome.status = ExactStatus::kInfeasible;
  }
  return outcome;
}

std::optional<ExactSolution> exact_reference(
    const model::Configuration& config, const ExactSearchLimits& limits) {
  ExactOutcome outcome = exact_reference_outcome(config, limits);
  if (outcome.search_space_exceeded) {
    throw ModelError("exact_reference: search space exceeds the configured "
                     "limit; reduce max_capacity or the instance size");
  }
  return std::move(outcome.solution);
}

}  // namespace bbs::core
