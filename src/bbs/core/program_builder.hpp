// Translation of a configuration into the second-order cone program of
// Algorithm 1 (Section IV of the paper).
//
// Decision variables (all real-valued):
//   * s(v)       — PAS start time of every SRDF actor, except one reference
//                  actor per weakly connected component (pinned to 0; start
//                  times are translation invariant, and pinning keeps the
//                  normal equations nonsingular);
//   * beta'(w)   — continuous budget of every task;
//   * lambda(w)  — the 1/beta'(w) surrogate of every task;
//   * delta'(e)  — continuous token count of every buffer's *space queue*
//                  (the data queue's tokens are the fixed initial fill
//                  iota(b); the buffer capacity is gamma = iota + ceil(delta')).
//
// Constraints:
//   (6)  E1 queues:        s(v_j) >= s(v_i) + rho(p_i) - beta'(w_i)
//   (7)  E2 queues:        s(v_j) >= s(v_i) + rho(p_i)*chi(w_i)*lambda(w_i)
//                                    - delta(e_ij)*mu(T)
//   (8)  per task:         lambda(w)*beta'(w) >= 1, written as the SOC
//                          membership (lambda+beta', lambda-beta', 2) in SOC3
//   (9)  per processor:    sum_{w on p} (beta'(w) + g) <= rho(p) - o(p)
//   (10) per memory:       sum_{b in m} (iota(b) + delta'(b) + 1)*zeta(b)
//                          <= sigma(m)
//   plus delta' >= 0 and the optional per-buffer capacity caps
//        iota(b) + delta'(b) <= max_capacity(b).
//
// Note on (10): the paper states sum (delta'(e)+1)*zeta(e) over the queues of
// the buffers in m; with all containers initially empty (iota = 0, as in all
// of the paper's experiments) our form is identical, and for iota > 0 it
// accounts the full buffer footprint gamma(b)*zeta(b) = (iota+delta')*zeta
// plus the rounding container, which is conservative.
//
// The builder can also *fix* the budgets (two-phase baseline: buffer sizing
// becomes the pure LP of prior work) or fix the space tokens (budget
// computation for given buffer sizes).
#pragma once

#include <optional>
#include <vector>

#include "bbs/core/srdf_construction.hpp"
#include "bbs/solver/conic_problem.hpp"

namespace bbs::core {

struct BuildOptions {
  /// Fixed budgets per graph (outer index = graph, inner = task). When set,
  /// beta'/lambda disappear from the program, which becomes a pure LP.
  std::optional<std::vector<Vector>> fixed_budgets;
  /// Fixed space-queue token counts per graph (outer = graph, inner =
  /// buffer). When set, delta' variables disappear.
  std::optional<std::vector<Vector>> fixed_deltas;
};

/// Maps model entities to variable indices of the built program (-1 = not a
/// variable: pinned reference start time, or fixed by BuildOptions).
struct ProgramLayout {
  std::vector<SrdfModel> models;              ///< SRDF skeleton per graph
  std::vector<std::vector<Index>> start_var;  ///< [graph][srdf actor]
  std::vector<std::vector<Index>> beta_var;   ///< [graph][task]
  std::vector<std::vector<Index>> lambda_var; ///< [graph][task]
  std::vector<std::vector<Index>> delta_var;  ///< [graph][buffer]
  Index num_vars = 0;

  /// Extracts the continuous budgets of a graph from a solution vector
  /// (entries of fixed budgets are copied from the BuildOptions).
  Vector budgets_of(const Vector& x, Index graph) const;
  /// Extracts the continuous space-token counts of a graph.
  Vector deltas_of(const Vector& x, Index graph) const;

  // Copies of fixed values (so the extractors above are self-contained).
  std::vector<Vector> fixed_budget_values;
  std::vector<Vector> fixed_delta_values;
  bool budgets_fixed = false;
  bool deltas_fixed = false;
};

/// Row and coefficient-slot bookkeeping recorded while the program is
/// built, keyed by the model entity each constraint came from. This is what
/// makes *in-place* parameter updates possible: changing a buffer's
/// capacity cap or a graph's target period rewrites only the affected `h`
/// entries (and the -mu coefficients on delta' in G) of the existing
/// problem instead of rebuilding it — the sparsity pattern, cone and
/// variable layout are untouched, so a persistent solver workspace keeps
/// its symbolic factorisation across re-solves (see core::SolverSession).
struct ProgramRowMap {
  struct GraphRows {
    std::vector<Index> task_e1;        ///< (6) rows, one per task
    std::vector<Index> task_selfloop;  ///< (7) self-loop rows, one per task
    std::vector<Index> buf_data;       ///< (7) data-queue rows, per buffer
    std::vector<Index> buf_space;      ///< (7) space-queue rows, per buffer
    std::vector<Index> buf_cap;        ///< cap rows, per buffer (-1 = uncapped)
    /// CSC value slot in G of the -mu coefficient on delta' in the
    /// space-queue row (-1 when the deltas are fixed).
    std::vector<Index> space_delta_slot;
  };
  std::vector<GraphRows> graphs;
  std::vector<Index> processor_row;  ///< (9) rows, -1 = no tasks on p
  std::vector<Index> memory_row;     ///< (10) rows, -1 = unconstrained/empty
};

struct BuiltProgram {
  solver::ConicProblem problem;
  ProgramLayout layout;
  ProgramRowMap rows;

  // In-place, pattern-preserving parameter updates. Each rewrites the h
  // entries (and for the period the -mu coefficients of G) recorded in
  // `rows` from the current state of `config`, which must be the
  // configuration the program was built from, mutated only in the
  // corresponding parameter. Throws ContractViolation when the update has
  // no slot to land in (e.g. a cap row for a buffer that was unbounded at
  // build time).

  /// Re-reads graph `graph`'s required period mu(T).
  void refresh_required_period(const model::Configuration& config,
                               Index graph);
  /// Re-reads the capacity cap of buffer `buffer` of graph `graph` (the
  /// buffer must have had a cap when the program was built).
  void refresh_buffer_cap(const model::Configuration& config, Index graph,
                          Index buffer);
  /// Replaces the fixed budgets of graph `graph` (programs built with
  /// BuildOptions::fixed_budgets only) and rewrites every row they enter.
  void refresh_fixed_budgets(const model::Configuration& config, Index graph,
                             const Vector& budgets);
  /// Replaces the fixed space-token counts of graph `graph` (programs built
  /// with BuildOptions::fixed_deltas only).
  void refresh_fixed_deltas(const model::Configuration& config, Index graph,
                            const Vector& deltas);
};

/// Builds the Algorithm-1 program for a validated configuration.
/// Throws ModelError on structurally invalid input.
BuiltProgram build_algorithm1(const model::Configuration& config,
                              const BuildOptions& options = {});

}  // namespace bbs::core
