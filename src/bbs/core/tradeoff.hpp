// Trade-off exploration between budgets and buffer sizes (Section V).
//
// The paper explores the non-linear budget/buffer trade-off by constraining
// the maximum buffer capacity and re-solving; this module packages that sweep
// (one SOCP per capacity bound) and reports the budget series that Figures
// 2(a), 2(b) and 3 plot.
//
// Both drivers run through a SolverSession: the program is built once, each
// step rewrites only the changed bound/rhs entries in place, the KKT
// system's symbolic factorisation is shared by every solve, and each point
// warm-starts from the previous one (see core/solver_session.hpp).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "bbs/core/solver_session.hpp"

namespace bbs::core {

struct TradeoffPoint {
  Index max_capacity = 0;  ///< common capacity bound applied in this step
  bool feasible = false;
  /// Continuous budgets beta'(w), one per task of the swept graph.
  Vector budgets_continuous;
  /// Rounded budgets beta(w).
  std::vector<Index> budgets;
  /// Capacities gamma(b) chosen under the bound.
  std::vector<Index> capacities;
  /// Sum over tasks of beta' (the quantity whose reduction the paper plots).
  double total_budget_continuous = 0.0;
};

struct TradeoffSweep {
  std::vector<TradeoffPoint> points;

  /// Budget deltas between consecutive feasible points:
  /// delta[i] = total_budget(points[i-1]) - total_budget(points[i])
  /// (the series of Figure 2(b)).
  Vector budget_deltas() const;
};

/// Called after every solved sweep point (feasible or not): progress
/// reporting, early logging, or aborting a long sweep by throwing.
using TradeoffPointCallback = std::function<void(const TradeoffPoint&)>;

/// Sweeps the common maximum capacity of all buffers of graph `graph_index`
/// from `cap_lo` to `cap_hi` containers and solves the joint problem at each
/// step through one warm-started SolverSession. The configuration is
/// restored before returning — also when a solve or the callback throws
/// mid-sweep (scope guard).
TradeoffSweep sweep_max_capacity(model::Configuration& config,
                                 Index graph_index, Index cap_lo, Index cap_hi,
                                 const MappingOptions& options = {},
                                 const TradeoffPointCallback& on_point = {});

/// Sweep core on a caller-provided session (api::Engine pools sessions
/// across requests of one problem structure). Every buffer of the swept
/// graph must have carried a finite max_capacity when the session was built
/// (the cap rows must exist). The session's configuration is left at
/// `cap_hi`; pooled callers re-apply their parameters per request.
TradeoffSweep sweep_max_capacity(SolverSession& session, Index graph_index,
                                 Index cap_lo, Index cap_hi,
                                 const TradeoffPointCallback& on_point = {});

struct MinimalPeriodResult {
  /// Smallest feasible required period of the swept graph, within the
  /// relative tolerance of the search.
  double period = 0.0;
  /// The mapping computed at that period.
  MappingResult mapping;
};

/// Finds the smallest required period of graph `graph_index` for which the
/// joint budget/buffer problem is feasible (the platform's maximum
/// sustainable throughput), by bisection over the SOCP feasibility oracle.
/// Other graphs keep their current requirements. The configuration is
/// restored before returning. Returns nullopt when even `period_hi` is
/// infeasible.
std::optional<MinimalPeriodResult> minimal_feasible_period(
    model::Configuration& config, Index graph_index, double period_hi,
    double rel_tol = 1e-4, const MappingOptions& options = {});

/// Bisection core on a caller-provided session. Probes are pure feasibility
/// queries, so the session should have been built with
/// `mapping.verify == false`; when `verify_result` is set the returned
/// mapping is verified against the session's configuration at the found
/// period (which the session is left at). Returns nullopt when even
/// `period_hi` is infeasible.
std::optional<MinimalPeriodResult> minimal_feasible_period(
    SolverSession& session, Index graph_index, double period_hi,
    double rel_tol, bool verify_result);

}  // namespace bbs::core
