// Two-phase baselines: budget and buffer computation in separate mapping
// phases, as in the flows the paper improves upon (Section I cites Moreira
// et al. EMSOFT'07 and Stuijk et al. DAC'07).
//
// * budget_first: phase 1 assigns each task the minimal budget that sustains
//   the throughput requirement in isolation (the self-loop bound
//   beta >= rho(p)*chi(w)/mu(T), rounded up to the granularity); phase 2
//   sizes the buffers for those fixed budgets — a pure LP, as in the earlier
//   buffer-sizing literature.
//
// * buffer_first: phase 1 fixes every buffer at its maximum allowed capacity
//   (or a caller-provided cap); phase 2 computes minimal budgets for those
//   fixed buffer sizes (still a cone program: the hyperbolic constraint (8)
//   remains).
//
// Both baselines can produce false negatives — configurations where a joint
// solution exists but the committed phase-1 choice makes phase 2 infeasible —
// and both can be arbitrarily more expensive than the joint optimum. The
// ablation bench bench_ablation_twophase quantifies this.
#pragma once

#include "bbs/core/budget_buffer_solver.hpp"

namespace bbs::core {

/// Budget-first two-phase flow. `options` configures the phase-2 solve.
MappingResult solve_budget_first(const model::Configuration& config,
                                 const MappingOptions& options = {});

/// Buffer-first two-phase flow: buffers are fixed at `default_capacity`
/// containers (or at their max_capacity when set, whichever is smaller).
MappingResult solve_buffer_first(const model::Configuration& config,
                                 Index default_capacity,
                                 const MappingOptions& options = {});

}  // namespace bbs::core
