// Two-phase baselines: budget and buffer computation in separate mapping
// phases, as in the flows the paper improves upon (Section I cites Moreira
// et al. EMSOFT'07 and Stuijk et al. DAC'07).
//
// * budget_first: phase 1 assigns each task the minimal budget that sustains
//   the throughput requirement in isolation (the self-loop bound
//   beta >= rho(p)*chi(w)/mu(T), rounded up to the granularity); phase 2
//   sizes the buffers for those fixed budgets — a pure LP, as in the earlier
//   buffer-sizing literature.
//
// * buffer_first: phase 1 fixes every buffer at its maximum allowed capacity
//   (or a caller-provided cap); phase 2 computes minimal budgets for those
//   fixed buffer sizes (still a cone program: the hyperbolic constraint (8)
//   remains).
//
// Both baselines can produce false negatives — configurations where a joint
// solution exists but the committed phase-1 choice makes phase 2 infeasible —
// and both can be arbitrarily more expensive than the joint optimum. The
// ablation bench bench_ablation_twophase quantifies this.
#pragma once

#include <vector>

#include "bbs/core/tradeoff.hpp"

namespace bbs::core {

/// Budget-first two-phase flow. `options` configures the phase-2 solve.
MappingResult solve_budget_first(const model::Configuration& config,
                                 const MappingOptions& options = {});

/// Buffer-first two-phase flow: buffers are fixed at `default_capacity`
/// containers (or at their max_capacity when set, whichever is smaller).
MappingResult solve_buffer_first(const model::Configuration& config,
                                 Index default_capacity,
                                 const MappingOptions& options = {});

/// The phase-1 commitments, exposed so session-based drivers can update a
/// prepared program in place instead of rebuilding it per step.

/// Minimal rounded budgets per graph for the current periods (the
/// budget-first phase 1): beta = round_up(rho(p)*chi(w)/mu(T)).
std::vector<Vector> budget_first_budgets(const model::Configuration& config,
                                         double rounding_eps = 1e-7);

/// Space-token counts per graph for a common default capacity (the
/// buffer-first phase 1): delta = gamma - iota with gamma clamped to
/// [max(1, iota), max_capacity].
std::vector<Vector> buffer_first_deltas(const model::Configuration& config,
                                        Index default_capacity);

/// Buffer-first flow across a whole range of default capacities — the
/// two-phase side of the capacity trade-off sweep — through one warm-started
/// SolverSession: the pure-LP phase-2 program is built once and only the
/// fixed token counts change between points. Element i of the result is the
/// flow at capacity cap_lo + i.
std::vector<MappingResult> sweep_buffer_first(
    const model::Configuration& config, Index cap_lo, Index cap_hi,
    const MappingOptions& options = {});

/// Sweep core on a caller-provided session built with fixed deltas
/// (api::Engine pools such sessions across requests). `config` is the
/// configuration the per-capacity token counts are derived from; it must
/// structurally match the session's.
std::vector<MappingResult> sweep_buffer_first(SolverSession& session,
                                              const model::Configuration& config,
                                              Index cap_lo, Index cap_hi);

/// Smallest required period of graph `graph_index` for which the
/// *budget-first two-phase* flow succeeds, by the same bisection as
/// minimal_feasible_period but re-committing the phase-1 budgets at every
/// probe (each probe updates the session's fixed budgets and period in
/// place). Because the committed budgets move in granularity steps, the
/// two-phase feasibility set is only approximately upward closed; the
/// search treats it as monotone, exactly as a staged mapping flow would.
/// Returns nullopt when even `period_hi` fails. Compared against the joint
/// flow, the gap between the two minima quantifies the false negatives of
/// staged mapping (Section I).
std::optional<MinimalPeriodResult> minimal_feasible_period_budget_first(
    const model::Configuration& config, Index graph_index, double period_hi,
    double rel_tol = 1e-4, const MappingOptions& options = {});

/// Bisection core on a caller-provided session built with fixed budgets.
/// Each probe re-commits the swept graph's phase-1 budgets for the candidate
/// period in place. The session should probe unverified
/// (`mapping.verify == false`); with `verify_result` the returned mapping is
/// verified at the found period, which the session is left at.
std::optional<MinimalPeriodResult> minimal_feasible_period_budget_first(
    SolverSession& session, Index graph_index, double period_hi,
    double rel_tol, double rounding_eps, bool verify_result);

}  // namespace bbs::core
