// Exact integer reference by exhaustive search.
//
// For small instances, the optimal *integer* allocation (budgets on the
// granularity grid, capacities in containers) can be found by enumerating
// candidate capacities and, for each capacity vector, computing the minimal
// feasible budgets by per-task binary search against the MCR feasibility
// oracle. This gives the ground truth against which the SOCP's two
// approximations — the hyperbolic relaxation of lambda*beta = 1 and the
// non-integral relaxation — are measured (ablation D1/D4 in DESIGN.md).
//
// Complexity is exponential in the number of buffers; callers cap the search
// space explicitly.
#pragma once

#include <optional>
#include <vector>

#include "bbs/core/verification.hpp"

namespace bbs::core {

struct ExactSolution {
  /// Weighted cost (same objective as Algorithm 1, on integer values).
  double cost = 0.0;
  std::vector<Vector> budgets;                ///< per graph, per task
  std::vector<std::vector<Index>> capacities; ///< per graph, per buffer
};

struct ExactSearchLimits {
  Index max_capacity = 10;         ///< per-buffer capacity ceiling
  std::size_t max_combinations = 200000;  ///< abort guard
};

/// Verdict of the exhaustive search. The distinction matters for anything
/// using the search as an oracle: only kInfeasible is a *proof* that no
/// integer allocation exists — kTruncated means the limits clipped the
/// search space and the question is unanswered, which a differential fuzzer
/// must never misread as an infeasibility verdict.
enum class ExactStatus {
  /// A feasible allocation was found; `solution` holds the cheapest one
  /// within the searched capacity ceilings. Globally optimal unless
  /// `capacity_limited` is set (a larger ceiling could only add candidates).
  kOptimal,
  /// The search was exhaustive over ceilings implied by the configuration
  /// itself (per-buffer max_capacity, replenishment-interval budget bounds)
  /// and found nothing: a complete infeasibility proof.
  kInfeasible,
  /// No verdict: the search space exceeded max_combinations before any
  /// enumeration (`search_space_exceeded`), or nothing feasible was found
  /// but `limits.max_capacity` clipped at least one buffer's ceiling below
  /// what the configuration allows (`capacity_limited`) — a feasible
  /// allocation might exist just beyond the ceiling.
  kTruncated,
};

const char* to_string(ExactStatus status);

struct ExactOutcome {
  ExactStatus status = ExactStatus::kTruncated;
  /// Engaged iff status == kOptimal.
  std::optional<ExactSolution> solution;
  /// The estimated odometer size exceeded limits.max_combinations; nothing
  /// was enumerated.
  bool search_space_exceeded = false;
  /// limits.max_capacity clipped at least one buffer below the ceiling the
  /// configuration itself would allow (kOptimal is then "optimal within the
  /// ceiling"; an empty search is kTruncated, not kInfeasible).
  bool capacity_limited = false;
  /// Estimated search-space size (capacity odometer × budget odometer).
  double estimated_combinations = 0.0;
};

/// Exhaustive search over all capacity combinations (1..max_capacity per
/// buffer, respecting per-buffer caps and memory constraints); budgets are
/// minimised per capacity vector by a coordinate-descent of per-task binary
/// searches over the granularity grid. Never throws on large instances:
/// truncation is reported in the outcome.
ExactOutcome exact_reference_outcome(const model::Configuration& config,
                                     const ExactSearchLimits& limits = {});

/// Back-compatible wrapper: returns the solution iff the outcome is
/// kOptimal, nullopt for kInfeasible (and for capacity-limited empty
/// searches, as before), and throws ModelError when the search space
/// exceeds max_combinations. New code that uses the search as an oracle
/// should call exact_reference_outcome and branch on the status instead.
std::optional<ExactSolution> exact_reference(
    const model::Configuration& config, const ExactSearchLimits& limits = {});

}  // namespace bbs::core
