// Exact integer reference by exhaustive search.
//
// For small instances, the optimal *integer* allocation (budgets on the
// granularity grid, capacities in containers) can be found by enumerating
// candidate capacities and, for each capacity vector, computing the minimal
// feasible budgets by per-task binary search against the MCR feasibility
// oracle. This gives the ground truth against which the SOCP's two
// approximations — the hyperbolic relaxation of lambda*beta = 1 and the
// non-integral relaxation — are measured (ablation D1/D4 in DESIGN.md).
//
// Complexity is exponential in the number of buffers; callers cap the search
// space explicitly.
#pragma once

#include <optional>
#include <vector>

#include "bbs/core/verification.hpp"

namespace bbs::core {

struct ExactSolution {
  /// Weighted cost (same objective as Algorithm 1, on integer values).
  double cost = 0.0;
  std::vector<Vector> budgets;                ///< per graph, per task
  std::vector<std::vector<Index>> capacities; ///< per graph, per buffer
};

struct ExactSearchLimits {
  Index max_capacity = 10;         ///< per-buffer capacity ceiling
  std::size_t max_combinations = 200000;  ///< abort guard
};

/// Exhaustive search over all capacity combinations (1..max_capacity per
/// buffer, respecting per-buffer caps and memory constraints); budgets are
/// minimised per capacity vector by a coordinate-descent of per-task binary
/// searches over the granularity grid. Returns nullopt if no feasible
/// allocation exists within the limits.
std::optional<ExactSolution> exact_reference(
    const model::Configuration& config, const ExactSearchLimits& limits = {});

}  // namespace bbs::core
