#include "bbs/core/budget_buffer_solver.hpp"

#include "bbs/common/assert.hpp"
#include "bbs/core/rounding.hpp"

namespace bbs::core {

MappingResult solve_built_program(const model::Configuration& config,
                                  const BuiltProgram& program,
                                  const MappingOptions& options) {
  const solver::IpmSolver ipm(options.ipm);
  return mapping_from_solution(config, program, ipm.solve(program.problem),
                               options);
}

MappingResult mapping_from_solution(const model::Configuration& config,
                                    const BuiltProgram& program,
                                    const solver::SolveResult& sol,
                                    const MappingOptions& options) {
  MappingResult result;
  result.status = sol.status;
  result.ipm_iterations = sol.iterations;
  result.warm_started = sol.warm_started;
  result.recovery_attempts = sol.recovery_attempts;
  result.recovered = sol.recovered;
  if (sol.status != solver::SolveStatus::kOptimal) {
    return result;
  }
  result.objective_continuous = sol.primal_objective;

  const Index num_graphs = config.num_task_graphs();
  result.graphs.resize(static_cast<std::size_t>(num_graphs));
  double rounded_cost = 0.0;

  for (Index gi = 0; gi < num_graphs; ++gi) {
    const auto g = static_cast<std::size_t>(gi);
    const model::TaskGraph& tg = config.task_graph(gi);
    MappedGraph& mg = result.graphs[g];

    const Vector beta_cont = program.layout.budgets_of(sol.x, gi);
    const Vector delta_cont = program.layout.deltas_of(sol.x, gi);

    mg.tasks.resize(static_cast<std::size_t>(tg.num_tasks()));
    for (Index t = 0; t < tg.num_tasks(); ++t) {
      const auto ti = static_cast<std::size_t>(t);
      mg.tasks[ti].budget_continuous = beta_cont[ti];
      mg.tasks[ti].budget = round_budget(
          beta_cont[ti], config.granularity(), options.rounding_eps);
      rounded_cost += tg.task(t).budget_weight *
                      static_cast<double>(mg.tasks[ti].budget);
    }

    mg.buffers.resize(static_cast<std::size_t>(tg.num_buffers()));
    for (Index b = 0; b < tg.num_buffers(); ++b) {
      const auto bi = static_cast<std::size_t>(b);
      const model::Buffer& buf = tg.buffer(b);
      mg.buffers[bi].tokens_continuous = delta_cont[bi];
      mg.buffers[bi].capacity = round_capacity(
          delta_cont[bi], buf.initial_fill, options.rounding_eps);
      // Rounded weighted cost counts the space tokens, mirroring the
      // objective (5): b(e)*zeta(e)*delta(e).
      rounded_cost += buf.size_weight *
                      static_cast<double>(buf.container_size) *
                      static_cast<double>(mg.buffers[bi].capacity -
                                          buf.initial_fill);
    }
  }

  result.objective_rounded = rounded_cost;
  if (options.verify) verify_mapping(config, result);
  return result;
}

MappingResult compute_budgets_and_buffers(const model::Configuration& config,
                                          const MappingOptions& options) {
  const BuiltProgram program = build_algorithm1(config);
  return solve_built_program(config, program, options);
}

void throw_if_interrupted(const MappingResult& result) {
  if (result.status == solver::SolveStatus::kTimedOut) {
    throw DeadlineExceeded("solve exceeded its deadline");
  }
  if (result.status == solver::SolveStatus::kCancelled) {
    throw Cancelled("solve was cancelled");
  }
}

void verify_mapping(const model::Configuration& config,
                    MappingResult& result) {
  if (!result.feasible()) return;
  bool all_ok = true;
  std::vector<Vector> budgets_by_graph;
  std::vector<std::vector<Index>> caps_by_graph;
  for (Index gi = 0; gi < config.num_task_graphs(); ++gi) {
    MappedGraph& mg = result.graphs[static_cast<std::size_t>(gi)];
    Vector budgets;
    std::vector<Index> capacities;
    budgets.reserve(mg.tasks.size());
    capacities.reserve(mg.buffers.size());
    for (const TaskAllocation& t : mg.tasks) {
      budgets.push_back(static_cast<double>(t.budget));
    }
    for (const BufferAllocation& b : mg.buffers) {
      capacities.push_back(b.capacity);
    }
    mg.verification = verify_graph(config, gi, budgets, capacities);
    all_ok = all_ok && mg.verification.throughput_met;
    budgets_by_graph.push_back(std::move(budgets));
    caps_by_graph.push_back(std::move(capacities));
  }
  all_ok = all_ok && verify_platform(config, budgets_by_graph, caps_by_graph);
  result.verified = all_ok;
}

}  // namespace bbs::core
