#include "bbs/service/dispatcher.hpp"

#include <deque>
#include <iterator>
#include <mutex>
#include <thread>

#include "bbs/common/hash.hpp"
#include "bbs/service/bounded_queue.hpp"
#include "bbs/service/fault_injector.hpp"
#include "bbs/telemetry/service_telemetry.hpp"
#include "bbs/telemetry/structure_cache.hpp"
#include "bbs/telemetry/trace.hpp"

namespace bbs::service {

namespace {

struct Task {
  api::Request request;
  Dispatcher::Completion done;
  /// Absolute deadline stamped at enqueue (max() = none): the request's
  /// budget starts ticking when it joins the queue, not when a worker
  /// finally picks it up.
  api::Engine::Deadline deadline = api::Engine::Deadline::max();
  std::shared_ptr<solver::CancelToken> cancel;
  /// Enqueue timestamp: queue_ms — histogram and response diagnostic alike —
  /// is measured from here to engine start on one clock.
  solver::CancelToken::Clock::time_point enqueued =
      solver::CancelToken::Clock::now();
  /// Telemetry keys, stamped at submit so run_task never recomputes the
  /// structure key.
  telemetry::RequestKind kind = telemetry::RequestKind::kOther;
  std::uint64_t key_hash = 0;
  /// Trace of a traced request (null for the allocation-free hot path).
  std::shared_ptr<telemetry::Trace> trace;
};

/// The error response of a task that never reached an engine (shed while
/// queued, or dropped by a non-draining stop).
api::Response shed_response(const Task& task, api::ErrorCode code,
                            std::string message) {
  api::Response response;
  response.id = task.request.id;
  response.kind = task.request.kind();
  response.status = api::ResponseStatus::kError;
  response.error = std::move(message);
  response.error_code = code;
  return response;
}

}  // namespace

struct Dispatcher::Worker {
  Worker(std::size_t index_, std::size_t queue_capacity,
         api::EngineOptions engine_options)
      : index(index_), queue(queue_capacity), engine(engine_options) {}

  const std::size_t index;
  BoundedQueue<Task> queue;
  // Touched only by the worker thread after construction.
  api::Engine engine;
  // Mirror of the engine counters, refreshed by the worker after every
  // request so stats() never reads the engine concurrently with a solve.
  mutable std::mutex stats_mutex;
  api::EngineStats stats;
  std::size_t pooled_sessions = 0;
  std::uint64_t stolen = 0;  ///< guarded by stats_mutex
  // Deadline/cancellation outcome counters, guarded by stats_mutex.
  std::uint64_t deadline_shed = 0;
  std::uint64_t timed_out_mid_solve = 0;
  std::uint64_t cancelled = 0;
  std::thread thread;
};

Dispatcher::Dispatcher(DispatcherOptions options) : options_(options) {
  if (options_.workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    options_.workers = hw > 0 ? hw : 1;
  }
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(i, options_.queue_capacity,
                                                options_.engine));
  }
  // Pre-warm from the persistent structure cache before any worker thread
  // exists: each entry is reconstructed into the pool of the worker its key
  // routes to, so the first real request of a cached structure is a pool
  // hit with a loaded (not derived) symbolic analysis. Failures are counted
  // on the cache, never fatal.
  if (options_.engine.structure_cache != nullptr) {
    for (const telemetry::CacheEntry& entry :
         options_.engine.structure_cache->entries()) {
      Worker& worker =
          *workers_[std::hash<std::string>{}(entry.key) % workers_.size()];
      worker.engine.prewarm_entry(entry);
    }
    for (auto& worker : workers_) {
      // Seed the stats mirrors so a stats request before the first task
      // already reports the pre-warmed pools.
      worker->stats = worker->engine.stats();
      worker->pooled_sessions = worker->engine.pooled_sessions();
    }
  }
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([this, w] { worker_loop(*w); });
  }
}

Dispatcher::~Dispatcher() { stop(/*drain=*/true); }

void Dispatcher::worker_loop(Worker& worker) {
  // Steal target: the peer with the deepest backlog right now. Depths are
  // sampled racily (each queue's size() takes its own mutex), which is
  // fine — a stale choice only means a slightly less-deep victim, and the
  // try_pop() itself is exactly-once.
  const auto try_steal = [&]() -> std::optional<Task> {
    Worker* victim = nullptr;
    std::size_t deepest = 0;
    for (const auto& peer : workers_) {
      if (peer.get() == &worker) continue;
      const std::size_t depth = peer->queue.size();
      if (depth > deepest) {
        deepest = depth;
        victim = peer.get();
      }
    }
    if (victim == nullptr) return std::nullopt;
    return victim->queue.try_pop();
  };

  const auto complete = [](Task& task, api::Response response) {
    if (!task.done) return;
    try {
      task.done(std::move(response));
    } catch (...) {
      // Completions are documented not to throw; swallowing here keeps a
      // misbehaving connection from killing the worker (and with it every
      // other client routed to this shard).
    }
  };

  const auto run_task = [&](Task task, bool was_steal) {
    FaultInjector& faults = FaultInjector::instance();
    if (faults.enabled()) {
      // worker.delay_ms inflates queue wait deterministically (the chaos
      // tests drive the shedding paths with it); ipm.fail_at forces the
      // solver into a numerical failure at a chosen iteration.
      if (const int delay = faults.worker_delay_ms(); delay > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
      if (const int fail_at = faults.ipm_fail_at(); fail_at >= 0) {
        task.request.options.ipm.fail_at_iteration = fail_at;
      }
      if (const int fail_once = faults.ipm_fail_once(); fail_once >= 0) {
        // Scoped to the first attempt only: the recovery ladder rescues the
        // solve, observable through the recovered_solves stats.
        task.request.options.ipm.fail_at_iteration = fail_once;
        task.request.options.ipm.fail_only_first_attempt = true;
      }
    }

    // Shedding: a task whose budget is already spent (or whose client is
    // gone) is answered without touching the engine — under overload the
    // scarce resource is solver time, and burning it on answers nobody
    // can use anymore only deepens the backlog.
    const bool was_cancelled =
        task.cancel != nullptr &&
        task.cancel->cancelled();
    const bool queue_expired =
        !was_cancelled && task.deadline != api::Engine::Deadline::max() &&
        solver::CancelToken::Clock::now() >= task.deadline;
    // Queue wait ends here, whether the task runs or is shed (the injected
    // worker delay above deliberately counts as queue wait).
    const double queue_ms =
        std::chrono::duration<double, std::milli>(
            solver::CancelToken::Clock::now() - task.enqueued)
            .count();
    telemetry::ServiceTelemetry* telemetry = options_.telemetry;
    if (telemetry != nullptr) {
      telemetry->histogram(task.kind, telemetry::Stage::kQueue)
          .record(queue_ms);
    }
    if (task.trace != nullptr) {
      // The queue span closes at dequeue whether the task runs or is shed.
      task.trace->add_span(
          "queue", queue_ms,
          {{"worker", static_cast<double>(worker.index)},
           {"stolen", was_steal ? 1.0 : 0.0}});
    }
    if (was_cancelled || queue_expired) {
      {
        std::lock_guard<std::mutex> lock(worker.stats_mutex);
        if (was_steal) ++worker.stolen;
        if (was_cancelled) {
          ++worker.cancelled;
        } else {
          ++worker.deadline_shed;
        }
      }
      api::Response response =
          was_cancelled
              ? shed_response(task, api::ErrorCode::kCancelled,
                              "request was cancelled while queued")
              : shed_response(
                    task, api::ErrorCode::kDeadlineExceeded,
                    "deadline expired while the request was queued");
      response.diagnostics.queue_ms = queue_ms;
      if (task.trace != nullptr) {
        // Terminal event: the trace never reaches an engine. The session
        // closes the trace after the write stage.
        task.trace->add_event("shed",
                              was_cancelled ? "cancelled" : "deadline");
        response.diagnostics.trace_id = task.trace->id();
      }
      complete(task, std::move(response));
      return;
    }

    if (task.trace != nullptr && task.request.options.trace_ipm) {
      // Per-execution sink, cleared again by the engine before the options
      // participate in any pool key (same discipline as deadline/cancel).
      task.request.options.ipm.trace_sink = task.trace.get();
    }
    api::Response response =
        worker.engine.run(task.request, task.deadline, task.cancel);
    response.diagnostics.queue_ms = queue_ms;
    if (task.trace != nullptr) {
      task.trace->add_span(
          "solve", response.diagnostics.solve_ms,
          {{"pool_hit", response.diagnostics.session_reused ? 1.0 : 0.0},
           {"ipm_iterations",
            static_cast<double>(response.diagnostics.ipm_iterations)},
           {"solves", static_cast<double>(response.diagnostics.solves)}});
      response.diagnostics.trace_id = task.trace->id();
    }
    if (telemetry != nullptr) {
      telemetry->histogram(task.kind, telemetry::Stage::kSolve)
          .record(response.diagnostics.solve_ms);
      telemetry::StructureObservation observation;
      observation.pool_hit = response.diagnostics.session_reused;
      observation.solves =
          static_cast<std::uint64_t>(response.diagnostics.solves);
      observation.ipm_iterations =
          static_cast<std::uint64_t>(response.diagnostics.ipm_iterations);
      observation.warm_started_solves = static_cast<std::uint64_t>(
          response.diagnostics.warm_started_solves);
      observation.recovered_solves =
          static_cast<std::uint64_t>(response.diagnostics.recovered_solves);
      telemetry->record_structure(task.key_hash, observation);
    }
    {
      std::lock_guard<std::mutex> lock(worker.stats_mutex);
      worker.stats = worker.engine.stats();
      worker.pooled_sessions = worker.engine.pooled_sessions();
      if (was_steal) ++worker.stolen;
      if (response.error_code == api::ErrorCode::kDeadlineExceeded) {
        ++worker.timed_out_mid_solve;
      } else if (response.error_code == api::ErrorCode::kCancelled) {
        ++worker.cancelled;
      }
    }
    complete(task, std::move(response));
  };

  if (!options_.work_stealing) {
    while (std::optional<Task> task = worker.queue.pop()) {
      run_task(std::move(*task), /*was_steal=*/false);
    }
    return;
  }
  for (;;) {
    // Own queue first — affinity work never yields to a steal.
    std::optional<Task> task = worker.queue.try_pop();
    bool was_steal = false;
    if (!task) {
      task = try_steal();
      was_steal = task.has_value();
    }
    if (!task) {
      // Idle: block briefly on the own queue, then rescan the peers. The
      // timeout is what turns a hot peer backlog into a steal at most one
      // poll interval later.
      task = worker.queue.pop_for(options_.steal_poll_interval);
      if (!task) {
        // closed-and-empty is stable (a closed queue accepts no pushes),
        // so this is the drain-complete exit, not a race. Peers still
        // draining their own backlogs do so on their own threads.
        if (worker.queue.closed() && worker.queue.size() == 0) break;
        continue;
      }
    }
    run_task(std::move(*task), was_steal);
  }
}

std::size_t Dispatcher::route(const api::Request& request) const {
  return std::hash<std::string>{}(api::request_structure_key(request)) %
         workers_.size();
}

std::size_t Dispatcher::queue_depth(std::size_t worker) const {
  return workers_[worker]->queue.size();
}

bool Dispatcher::submit(api::Request request, Completion done,
                        std::shared_ptr<solver::CancelToken> cancel,
                        std::shared_ptr<telemetry::Trace> trace) {
  Task task;
  if (request.options.deadline_ms > 0.0) {
    task.deadline =
        solver::CancelToken::Clock::now() +
        std::chrono::duration_cast<solver::CancelToken::Clock::duration>(
            std::chrono::duration<double, std::milli>(
                request.options.deadline_ms));
  }
  task.cancel = std::move(cancel);
  const std::string key = api::request_structure_key(request);
  Worker& worker = *workers_[std::hash<std::string>{}(key) % workers_.size()];
  task.key_hash = common::fnv1a_64(key);
  task.kind = telemetry::request_kind_from_string(request.kind());
  task.request = std::move(request);
  task.done = std::move(done);
  task.trace = std::move(trace);
  if (task.trace != nullptr) {
    telemetry::TraceEvent event;
    event.name = "enqueue";
    event.t_ms = -1.0;  // stamp at push, not at TraceEvent construction
    event.attrs = {{"worker", static_cast<double>(worker.index)},
                   {"queue_depth", static_cast<double>(worker.queue.size())}};
    task.trace->add_event(std::move(event));
  }
  return worker.queue.push(std::move(task));
}

void Dispatcher::stop(bool drain) {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  std::deque<Task> dropped;
  for (auto& worker : workers_) {
    if (drain) {
      worker->queue.close();
    } else {
      std::deque<Task> taken = worker->queue.close_and_take();
      std::move(taken.begin(), taken.end(), std::back_inserter(dropped));
    }
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  // Every accepted submit owes its caller a completion, even on fast
  // abort: a JsonlSession counts completions against consumed lines, and
  // silently dropping a task would hang its finish() forever. The dropped
  // work is answered with a shutdown error instead of being executed.
  for (Task& task : dropped) {
    if (!task.done) continue;
    try {
      api::Response response = shed_response(
          task, api::ErrorCode::kShuttingDown, "service is shutting down");
      if (task.trace != nullptr) {
        task.trace->add_event("shed", "shutdown");
        response.diagnostics.trace_id = task.trace->id();
      }
      task.done(std::move(response));
    } catch (...) {
      // Completions are documented not to throw (see worker_loop).
    }
  }
}

ServiceStats Dispatcher::stats() const {
  ServiceStats total;
  total.workers.reserve(workers_.size());
  for (const auto& worker : workers_) {
    WorkerStats ws;
    ws.worker = worker->index;
    {
      std::lock_guard<std::mutex> lock(worker->stats_mutex);
      ws.engine = worker->stats;
      ws.pooled_sessions = worker->pooled_sessions;
      ws.stolen = worker->stolen;
      ws.deadline_shed = worker->deadline_shed;
      ws.timed_out_mid_solve = worker->timed_out_mid_solve;
      ws.cancelled = worker->cancelled;
    }
    ws.queue_depth = worker->queue.size();
    total.stolen += ws.stolen;
    total.deadline_shed += ws.deadline_shed;
    total.timed_out_mid_solve += ws.timed_out_mid_solve;
    total.cancelled += ws.cancelled;
    total.requests += ws.engine.requests;
    total.ok += ws.engine.ok;
    total.infeasible += ws.engine.infeasible;
    total.errors += ws.engine.errors;
    total.warm_hits += ws.engine.pool_hits;
    total.symbolic_factorisations += ws.engine.symbolic_factorisations;
    total.recovered_solves += ws.engine.recovered_solves;
    total.prewarmed_sessions += ws.engine.prewarmed_sessions;
    total.queue_depth += ws.queue_depth;
    total.workers.push_back(std::move(ws));
  }
  return total;
}

}  // namespace bbs::service
