#include "bbs/service/endpoint.hpp"

#include <cstdlib>

#include "bbs/common/assert.hpp"

namespace bbs::service {

namespace {

[[noreturn]] void bad_endpoint(const std::string& spec,
                               const std::string& why) {
  throw ModelError("invalid listen endpoint '" + spec + "': " + why);
}

/// Splits "host:port" / "[v6]:port" into its parts; the rest of the
/// validation (emptiness, numeric range) stays in parse_endpoint.
void split_host_port(const std::string& spec, const std::string& rest,
                     std::string& host, std::string& port) {
  if (!rest.empty() && rest.front() == '[') {
    const std::size_t close = rest.find(']');
    if (close == std::string::npos) bad_endpoint(spec, "unterminated '['");
    host = rest.substr(1, close - 1);
    if (close + 1 >= rest.size() || rest[close + 1] != ':') {
      bad_endpoint(spec, "expected ':port' after ']'");
    }
    port = rest.substr(close + 2);
    return;
  }
  // The *last* colon separates the port, so an unbracketed IPv6 literal is
  // rejected as a non-numeric port rather than silently misparsed.
  const std::size_t colon = rest.rfind(':');
  if (colon == std::string::npos) bad_endpoint(spec, "missing ':port'");
  host = rest.substr(0, colon);
  port = rest.substr(colon + 1);
}

}  // namespace

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  const bool v6 = host.find(':') != std::string::npos;
  return "tcp://" + (v6 ? "[" + host + "]" : host) + ":" +
         std::to_string(port);
}

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint endpoint;
  if (spec.empty()) bad_endpoint(spec, "empty");
  if (spec.rfind("tcp://", 0) == 0) {
    endpoint.kind = Endpoint::Kind::kTcp;
    std::string host;
    std::string port;
    split_host_port(spec, spec.substr(6), host, port);
    if (host.empty()) bad_endpoint(spec, "empty host");
    if (port.empty()) bad_endpoint(spec, "empty port");
    for (const char c : port) {
      if (c < '0' || c > '9') bad_endpoint(spec, "non-numeric port");
    }
    const unsigned long value = std::strtoul(port.c_str(), nullptr, 10);
    if (value > 65535) bad_endpoint(spec, "port out of range");
    endpoint.host = std::move(host);
    endpoint.port = static_cast<std::uint16_t>(value);
    return endpoint;
  }
  endpoint.kind = Endpoint::Kind::kUnix;
  endpoint.path = spec.rfind("unix:", 0) == 0 ? spec.substr(5) : spec;
  if (endpoint.path.empty()) bad_endpoint(spec, "empty socket path");
  return endpoint;
}

}  // namespace bbs::service
