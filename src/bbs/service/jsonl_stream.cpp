#include "bbs/service/jsonl_stream.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <istream>
#include <ostream>
#include <utility>
#include <vector>

#include "bbs/common/assert.hpp"
#include "bbs/io/api_io.hpp"
#include "bbs/io/service_io.hpp"
#include "bbs/telemetry/structure_cache.hpp"

namespace bbs::service {

using io::JsonArray;
using io::JsonObject;
using io::JsonValue;

namespace {

JsonValue engine_stats_to_json_value(const api::EngineStats& stats) {
  JsonObject o;
  o["requests"] = JsonValue(static_cast<double>(stats.requests));
  o["ok"] = JsonValue(static_cast<double>(stats.ok));
  o["infeasible"] = JsonValue(static_cast<double>(stats.infeasible));
  o["errors"] = JsonValue(static_cast<double>(stats.errors));
  o["pool_hits"] = JsonValue(static_cast<double>(stats.pool_hits));
  o["pool_misses"] = JsonValue(static_cast<double>(stats.pool_misses));
  o["evictions"] = JsonValue(static_cast<double>(stats.evictions));
  o["symbolic_factorisations"] =
      JsonValue(static_cast<double>(stats.symbolic_factorisations));
  o["ipm_iterations"] = JsonValue(static_cast<double>(stats.ipm_iterations));
  o["solves"] = JsonValue(static_cast<double>(stats.solves));
  o["warm_started_solves"] =
      JsonValue(static_cast<double>(stats.warm_started_solves));
  o["recovered_solves"] =
      JsonValue(static_cast<double>(stats.recovered_solves));
  o["prewarmed_sessions"] =
      JsonValue(static_cast<double>(stats.prewarmed_sessions));
  return JsonValue(std::move(o));
}

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
  return std::string(buf);
}

/// Per-(kind, stage) latency snapshots, kinds with traffic only:
/// {"solve":{"queue":{"count":..,"p50_ms":..,...},"solve":{...},...},...}
JsonValue latency_to_json_value(const telemetry::ServiceTelemetry& telemetry) {
  JsonObject kinds;
  for (int k = 0; k < telemetry::kNumRequestKinds; ++k) {
    const auto kind = static_cast<telemetry::RequestKind>(k);
    JsonObject stages;
    for (int s = 0; s < telemetry::kNumStages; ++s) {
      const auto stage = static_cast<telemetry::Stage>(s);
      const telemetry::LatencyHistogram::Snapshot snap =
          telemetry.histogram(kind, stage).snapshot();
      if (snap.count == 0) continue;
      JsonObject o;
      o["count"] = JsonValue(static_cast<double>(snap.count));
      o["p50_ms"] = JsonValue(snap.percentile(0.50));
      o["p90_ms"] = JsonValue(snap.percentile(0.90));
      o["p99_ms"] = JsonValue(snap.percentile(0.99));
      o["max_ms"] = JsonValue(snap.max_ms);
      o["sum_ms"] = JsonValue(snap.sum_ms);
      stages[telemetry::to_string(stage)] = JsonValue(std::move(o));
    }
    if (!stages.entries().empty()) {
      kinds[telemetry::to_string(kind)] = JsonValue(std::move(stages));
    }
  }
  return JsonValue(std::move(kinds));
}

JsonValue structures_to_json_value(
    const telemetry::ServiceTelemetry& telemetry) {
  JsonArray rows;
  for (const telemetry::StructureRow& row : telemetry.structure_rows()) {
    JsonObject o;
    o["structure"] = JsonValue(hex64(row.key_hash));
    o["requests"] = JsonValue(static_cast<double>(row.requests));
    o["pool_hits"] = JsonValue(static_cast<double>(row.pool_hits));
    o["pool_misses"] = JsonValue(static_cast<double>(row.pool_misses));
    o["solves"] = JsonValue(static_cast<double>(row.solves));
    o["ipm_iterations"] =
        JsonValue(static_cast<double>(row.ipm_iterations));
    o["warm_started_solves"] =
        JsonValue(static_cast<double>(row.warm_started_solves));
    o["recovered_solves"] =
        JsonValue(static_cast<double>(row.recovered_solves));
    rows.push_back(JsonValue(std::move(o)));
  }
  JsonObject root;
  root["rows"] = JsonValue(std::move(rows));
  root["evictions"] =
      JsonValue(static_cast<double>(telemetry.structure_evictions()));
  root["max_structures"] =
      JsonValue(static_cast<double>(telemetry.max_structures()));
  return JsonValue(std::move(root));
}

/// Parses the optional filter fields of a {"kind":"trace"} control line.
/// Strict like set_config: unknown keys and mistyped values throw, so a
/// typoed filter is a parse error at the line's position instead of a
/// silently unfiltered reply.
telemetry::TraceFilter trace_filter_from_json(const JsonValue& doc) {
  telemetry::TraceFilter filter;
  for (const auto& [key, value] : doc.as_object().entries()) {
    if (key == "kind" || key == "id" || key == "schema_version") continue;
    if (key == "trace_id") {
      if (!value.is_string()) {
        throw ModelError("trace: trace_id must be a string");
      }
      filter.id = value.as_string();
    } else if (key == "request_kind") {
      if (!value.is_string()) {
        throw ModelError("trace: request_kind must be a string");
      }
      filter.kind = value.as_string();
    } else if (key == "min_duration_ms") {
      if (!value.is_number() || value.as_number() < 0.0) {
        throw ModelError("trace: min_duration_ms must be a non-negative "
                         "number");
      }
      filter.min_duration_ms = value.as_number();
    } else if (key == "errors_only") {
      if (!value.is_bool()) {
        throw ModelError("trace: errors_only must be a boolean");
      }
      filter.errors_only = value.as_bool();
    } else if (key == "limit") {
      if (!value.is_number() || value.as_number() < 0.0) {
        throw ModelError("trace: limit must be a non-negative number");
      }
      filter.limit = static_cast<std::size_t>(value.as_number());
    } else {
      throw ModelError("trace: unknown key '" + key + "'");
    }
  }
  return filter;
}

JsonValue cache_stats_to_json_value(const telemetry::StructureCache& cache) {
  const telemetry::StructureCacheStats stats = cache.stats();
  JsonObject o;
  o["directory"] = JsonValue(cache.directory());
  o["entries"] = JsonValue(static_cast<double>(cache.size()));
  o["entries_loaded"] = JsonValue(static_cast<double>(stats.entries_loaded));
  o["load_errors"] = JsonValue(static_cast<double>(stats.load_errors));
  o["saves"] = JsonValue(static_cast<double>(stats.saves));
  o["save_errors"] = JsonValue(static_cast<double>(stats.save_errors));
  o["prewarm_errors"] = JsonValue(static_cast<double>(stats.prewarm_errors));
  o["lookup_hits"] = JsonValue(static_cast<double>(stats.lookup_hits));
  o["lookup_misses"] = JsonValue(static_cast<double>(stats.lookup_misses));
  o["evictions"] = JsonValue(static_cast<double>(stats.evictions));
  return JsonValue(std::move(o));
}

}  // namespace

JsonValue service_stats_to_json_value(const ServiceStats& stats) {
  JsonObject root;
  root["requests"] = JsonValue(static_cast<double>(stats.requests));
  root["ok"] = JsonValue(static_cast<double>(stats.ok));
  root["infeasible"] = JsonValue(static_cast<double>(stats.infeasible));
  root["errors"] = JsonValue(static_cast<double>(stats.errors));
  root["warm_hits"] = JsonValue(static_cast<double>(stats.warm_hits));
  root["symbolic_factorisations"] =
      JsonValue(static_cast<double>(stats.symbolic_factorisations));
  root["recovered_solves"] =
      JsonValue(static_cast<double>(stats.recovered_solves));
  root["prewarmed_sessions"] =
      JsonValue(static_cast<double>(stats.prewarmed_sessions));
  root["queue_depth"] = JsonValue(static_cast<double>(stats.queue_depth));
  root["stolen"] = JsonValue(static_cast<double>(stats.stolen));
  root["deadline_shed"] = JsonValue(static_cast<double>(stats.deadline_shed));
  root["timed_out_mid_solve"] =
      JsonValue(static_cast<double>(stats.timed_out_mid_solve));
  root["cancelled"] = JsonValue(static_cast<double>(stats.cancelled));
  root["connections_accepted"] =
      JsonValue(static_cast<double>(stats.connections_accepted));
  root["accept_failures"] =
      JsonValue(static_cast<double>(stats.accept_failures));
  root["slow_client_disconnects"] =
      JsonValue(static_cast<double>(stats.slow_client_disconnects));
  root["quota_rejections"] =
      JsonValue(static_cast<double>(stats.quota_rejections));
  root["overload_rejections"] =
      JsonValue(static_cast<double>(stats.overload_rejections));
  JsonArray outboxes;
  for (const std::size_t depth : stats.connection_outbox_depths) {
    outboxes.push_back(JsonValue(static_cast<double>(depth)));
  }
  root["connection_outbox_depths"] = JsonValue(std::move(outboxes));
  JsonArray workers;
  for (const WorkerStats& ws : stats.workers) {
    JsonObject w;
    w["worker"] = JsonValue(static_cast<double>(ws.worker));
    w["queue_depth"] = JsonValue(static_cast<double>(ws.queue_depth));
    w["pooled_sessions"] = JsonValue(static_cast<double>(ws.pooled_sessions));
    w["stolen"] = JsonValue(static_cast<double>(ws.stolen));
    w["deadline_shed"] = JsonValue(static_cast<double>(ws.deadline_shed));
    w["timed_out_mid_solve"] =
        JsonValue(static_cast<double>(ws.timed_out_mid_solve));
    w["cancelled"] = JsonValue(static_cast<double>(ws.cancelled));
    w["engine"] = engine_stats_to_json_value(ws.engine);
    workers.push_back(JsonValue(std::move(w)));
  }
  root["workers"] = JsonValue(std::move(workers));
  return JsonValue(std::move(root));
}

JsonValue runtime_config_to_json_value(const RuntimeConfig& config) {
  JsonObject o;
  o["max_in_flight"] = JsonValue(static_cast<double>(
      config.max_in_flight.load(std::memory_order_relaxed)));
  o["requests_per_second"] = JsonValue(config.requests_per_second());
  o["burst"] = JsonValue(config.burst());
  o["default_deadline_ms"] = JsonValue(static_cast<double>(
      config.default_deadline_ms.load(std::memory_order_relaxed)));
  o["queue_high_water"] = JsonValue(static_cast<double>(
      config.queue_high_water.load(std::memory_order_relaxed)));
  o["write_deadline_ms"] = JsonValue(static_cast<double>(
      config.write_deadline_ms.load(std::memory_order_relaxed)));
  return JsonValue(std::move(o));
}

JsonValue apply_set_config(const JsonValue& doc, RuntimeConfig& config,
                           std::string& description) {
  const JsonObject& root = doc.as_object();
  JsonObject applied;
  const auto numeric = [&root](const std::string& key) {
    const JsonValue& v = root.at(key);
    if (!v.is_number() || v.as_number() < 0.0) {
      throw ModelError("set_config: " + key +
                       " must be a non-negative number");
    }
    return v.as_number();
  };
  const auto note = [&](const std::string& key, double value) {
    applied[key] = JsonValue(value);
    if (!description.empty()) description += ", ";
    description += key + "=" + io::write_json_compact(JsonValue(value));
  };
  for (const auto& [key, value] : root.entries()) {
    (void)value;
    if (key == "kind" || key == "id" || key == "schema_version") continue;
    if (key == "max_in_flight") {
      const double v = numeric(key);
      config.max_in_flight.store(static_cast<std::uint64_t>(v),
                                 std::memory_order_relaxed);
      note(key, v);
    } else if (key == "requests_per_second") {
      const double v = numeric(key);
      config.set_requests_per_second(v);
      note(key, v);
    } else if (key == "burst") {
      const double v = numeric(key);
      config.set_burst(v);
      note(key, v);
    } else if (key == "default_deadline_ms") {
      const double v = numeric(key);
      config.default_deadline_ms.store(static_cast<std::uint64_t>(v),
                                       std::memory_order_relaxed);
      note(key, v);
    } else if (key == "queue_high_water") {
      const double v = numeric(key);
      config.queue_high_water.store(static_cast<std::uint64_t>(v),
                                    std::memory_order_relaxed);
      note(key, v);
    } else if (key == "write_deadline_ms") {
      const double v = numeric(key);
      config.write_deadline_ms.store(static_cast<std::int64_t>(v),
                                     std::memory_order_relaxed);
      note(key, v);
    } else {
      throw ModelError("set_config: unknown key '" + key + "'");
    }
  }
  JsonObject result;
  result["applied"] = JsonValue(std::move(applied));
  result["config"] = runtime_config_to_json_value(config);
  return JsonValue(std::move(result));
}

namespace {

void metric_header(std::string& out, const char* name, const char* type,
                   const char* help) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

/// One sample line. Locale-proof float formatting: %.17g round-trips and
/// never emits a locale decimal comma via the "C"-locale snprintf.
void metric_line(std::string& out, const char* name, const std::string& labels,
                 double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += buf;
  out += '\n';
}

void counter(std::string& out, const char* name, const char* help,
             double value) {
  metric_header(out, name, "counter", help);
  metric_line(out, name, std::string(), value);
}

void gauge(std::string& out, const char* name, const char* help,
           double value) {
  metric_header(out, name, "gauge", help);
  metric_line(out, name, std::string(), value);
}

}  // namespace

std::string metrics_exposition(const ServiceStats& stats,
                               const telemetry::ServiceTelemetry* telemetry,
                               const telemetry::StructureCache* cache) {
  std::string out;
  out.reserve(4096);
  counter(out, "bbs_requests_total",
          "Requests executed by the daemon engines.",
          static_cast<double>(stats.requests));
  counter(out, "bbs_requests_ok_total", "Requests answered status=ok.",
          static_cast<double>(stats.ok));
  counter(out, "bbs_requests_infeasible_total",
          "Requests answered status=infeasible.",
          static_cast<double>(stats.infeasible));
  counter(out, "bbs_requests_errors_total",
          "Requests answered status=error.",
          static_cast<double>(stats.errors));
  counter(out, "bbs_warm_hits_total",
          "Requests served from an already warm pooled session.",
          static_cast<double>(stats.warm_hits));
  counter(out, "bbs_symbolic_factorisations_total",
          "Symbolic KKT factorisations computed from scratch.",
          static_cast<double>(stats.symbolic_factorisations));
  counter(out, "bbs_recovered_solves_total",
          "Solves rescued by the IPM recovery ladder.",
          static_cast<double>(stats.recovered_solves));
  counter(out, "bbs_prewarmed_sessions_total",
          "Sessions reconstructed at startup from the structure cache.",
          static_cast<double>(stats.prewarmed_sessions));
  counter(out, "bbs_stolen_total", "Tasks executed by a non-affine worker.",
          static_cast<double>(stats.stolen));
  counter(out, "bbs_deadline_shed_total",
          "Tasks shed in the queue after their deadline expired.",
          static_cast<double>(stats.deadline_shed));
  counter(out, "bbs_timed_out_mid_solve_total",
          "Tasks whose deadline expired mid-solve.",
          static_cast<double>(stats.timed_out_mid_solve));
  counter(out, "bbs_cancelled_total", "Tasks abandoned by cancellation.",
          static_cast<double>(stats.cancelled));
  counter(out, "bbs_quota_rejections_total",
          "Request lines rejected over per-connection quota.",
          static_cast<double>(stats.quota_rejections));
  counter(out, "bbs_overload_rejections_total",
          "Request lines rejected at the queue high-water mark.",
          static_cast<double>(stats.overload_rejections));
  gauge(out, "bbs_queue_depth", "Queued tasks across all workers.",
        static_cast<double>(stats.queue_depth));
  gauge(out, "bbs_workers", "Worker threads (engines).",
        static_cast<double>(stats.workers.size()));

  if (cache != nullptr) {
    const telemetry::StructureCacheStats cs = cache->stats();
    gauge(out, "bbs_cache_entries", "Structure-cache entries in memory.",
          static_cast<double>(cache->size()));
    counter(out, "bbs_cache_entries_loaded_total",
            "Cache entries loaded from disk at startup.",
            static_cast<double>(cs.entries_loaded));
    counter(out, "bbs_cache_load_errors_total",
            "Corrupt or stale cache files skipped at load.",
            static_cast<double>(cs.load_errors));
    counter(out, "bbs_cache_saves_total", "Cache entries written to disk.",
            static_cast<double>(cs.saves));
    counter(out, "bbs_cache_save_errors_total",
            "Cache writes dropped or failed.",
            static_cast<double>(cs.save_errors));
    counter(out, "bbs_cache_prewarm_errors_total",
            "Loaded entries that failed session reconstruction.",
            static_cast<double>(cs.prewarm_errors));
    counter(out, "bbs_cache_lookup_hits_total", "Cache lookup hits.",
            static_cast<double>(cs.lookup_hits));
    counter(out, "bbs_cache_lookup_misses_total", "Cache lookup misses.",
            static_cast<double>(cs.lookup_misses));
    counter(out, "bbs_cache_evictions_total",
            "Cache files removed by the LRU-by-mtime disk GC.",
            static_cast<double>(cs.evictions));
  }

  if (telemetry != nullptr) {
    // Native Prometheus histograms: the 106 log-linear buckets coarsened
    // to octave granularity — one cumulative `le` edge per power of two
    // (28 lines per series incl. the underflow edge and +Inf), fine enough
    // for latency SLOs while the full kind×stage matrix stays a cheap
    // scrape. The edges are a fixed function of the histogram layout, so
    // every scrape sees identical bucket boundaries.
    using Histogram = telemetry::LatencyHistogram;
    metric_header(out, "bbs_request_latency_ms", "histogram",
                  "Request latency by kind and stage (milliseconds).");
    std::vector<std::pair<std::string, double>> max_series;
    for (int k = 0; k < telemetry::kNumRequestKinds; ++k) {
      const auto kind = static_cast<telemetry::RequestKind>(k);
      for (int s = 0; s < telemetry::kNumStages; ++s) {
        const auto stage = static_cast<telemetry::Stage>(s);
        const Histogram::Snapshot snap =
            telemetry->histogram(kind, stage).snapshot();
        if (snap.count == 0) continue;
        const std::string base = std::string("kind=\"") +
                                 telemetry::to_string(kind) + "\",stage=\"" +
                                 telemetry::to_string(stage) + "\"";
        const auto bucket_line = [&](double upper_ms,
                                     std::uint64_t cumulative) {
          char le[32];
          std::snprintf(le, sizeof(le), "%.17g", upper_ms);
          metric_line(out, "bbs_request_latency_ms_bucket",
                      base + ",le=\"" + le + "\"",
                      static_cast<double>(cumulative));
        };
        std::uint64_t cumulative = snap.buckets[0];
        bucket_line(Histogram::bucket_upper_ms(0), cumulative);
        for (int octave = 0; octave < Histogram::kOctaves; ++octave) {
          const int first = 1 + octave * Histogram::kSubBuckets;
          for (int sub = 0; sub < Histogram::kSubBuckets; ++sub) {
            cumulative += snap.buckets[static_cast<std::size_t>(first + sub)];
          }
          bucket_line(
              Histogram::bucket_upper_ms(first + Histogram::kSubBuckets - 1),
              cumulative);
        }
        cumulative += snap.buckets[Histogram::kBuckets - 1];
        metric_line(out, "bbs_request_latency_ms_bucket",
                    base + ",le=\"+Inf\"", static_cast<double>(cumulative));
        metric_line(out, "bbs_request_latency_ms_sum", base, snap.sum_ms);
        metric_line(out, "bbs_request_latency_ms_count", base,
                    static_cast<double>(snap.count));
        max_series.emplace_back(base, snap.max_ms);
      }
    }
    // Max is not a histogram suffix, so it lives in its own gauge family
    // (renamed from bbs_request_latency_ms_max, which would collide with
    // the histogram's reserved suffixes).
    metric_header(out, "bbs_request_latency_max_ms", "gauge",
                  "Largest latency observed by kind and stage "
                  "(milliseconds).");
    for (const auto& [labels, max_ms] : max_series) {
      metric_line(out, "bbs_request_latency_max_ms", labels, max_ms);
    }

    metric_header(out, "bbs_structure_requests_total", "counter",
                  "Requests per structure hash (hottest rows).");
    metric_header(out, "bbs_structure_solves_total", "counter",
                  "Solves per structure hash (hottest rows).");
    metric_header(out, "bbs_structure_ipm_iterations_total", "counter",
                  "IPM iterations per structure hash (hottest rows).");
    // The table is already bounded (max_structures); cap the exposition at
    // the hottest rows so one scrape stays small even at the bound.
    constexpr std::size_t kMaxRows = 32;
    std::size_t emitted = 0;
    for (const telemetry::StructureRow& row : telemetry->structure_rows()) {
      if (emitted++ == kMaxRows) break;
      const std::string labels =
          "structure=\"" + hex64(row.key_hash) + "\"";
      metric_line(out, "bbs_structure_requests_total", labels,
                  static_cast<double>(row.requests));
      metric_line(out, "bbs_structure_solves_total", labels,
                  static_cast<double>(row.solves));
      metric_line(out, "bbs_structure_ipm_iterations_total", labels,
                  static_cast<double>(row.ipm_iterations));
    }
    counter(out, "bbs_structure_table_evictions_total",
            "Structure rows evicted from the bounded telemetry table.",
            static_cast<double>(telemetry->structure_evictions()));
  }
  return out;
}

JsonlSession::JsonlSession(Dispatcher& dispatcher, Sink sink,
                           SessionOptions options)
    : dispatcher_(dispatcher),
      sink_(std::move(sink)),
      options_(std::move(options)),
      cancel_token_(std::make_shared<solver::CancelToken>()) {}

JsonlSession::~JsonlSession() { finish(); }

void JsonlSession::cancel_pending() { cancel_token_->cancel(); }

void JsonlSession::submit_line(const std::string& line) {
  if (line.find_first_not_of(" \t\r") == std::string::npos) return;
  const std::uint64_t index = submitted_++;

  // One error-response path: every rejection of this line (parse, quota,
  // overload, shutdown) still yields exactly one response line at its
  // position, with a machine-readable error_code.
  const auto reject = [this, index](
                          std::string id, std::string kind,
                          api::ErrorCode code, std::string message,
                          bool quota, bool overload,
                          std::shared_ptr<telemetry::Trace> trace = nullptr) {
    api::Response r;
    r.id = std::move(id);
    r.kind = std::move(kind);
    r.status = api::ResponseStatus::kError;
    r.error = std::move(message);
    r.error_code = code;
    Entry entry;
    entry.is_quota_rejection = quota;
    entry.is_overload_rejection = overload;
    entry.status = r.status;
    if (trace != nullptr) {
      // A rejected traced request still closes its trace: the rejection is
      // exactly the kind of terminal event worth retrieving later.
      r.diagnostics.trace_id = trace->id();
      entry.trace_error_code = api::to_string(code);
      entry.trace = std::move(trace);
    }
    entry.line = io::write_json_compact(io::response_to_json_value(r));
    deliver(index, std::move(entry));
  };

  try {
    const JsonValue doc = io::parse_json(line);
    if (const auto control = io::control_kind(doc)) {
      if (*control == io::ControlKind::kSetConfig) {
        // Applied at *submit* time — the new limits govern every later
        // line immediately — while the acknowledgement still emits at
        // this line's position like any other response.
        if (!options_.runtime_config) {
          throw ModelError(
              "set_config is not supported on this connection (no runtime "
              "config attached)");
        }
        std::string description;
        JsonValue result =
            apply_set_config(doc, *options_.runtime_config, description);
        if (options_.on_config_change && !description.empty()) {
          options_.on_config_change(description);
        }
        Entry entry;
        entry.status = api::ResponseStatus::kOk;
        entry.line = io::write_json_compact(io::control_response_envelope(
            io::ControlKind::kSetConfig, io::control_id(doc),
            std::move(result)));
        deliver(index, std::move(entry));
        return;
      }
      if (*control == io::ControlKind::kTrace &&
          options_.trace_ring == nullptr) {
        throw ModelError(
            "trace is not supported on this connection (no trace ring "
            "attached)");
      }
      // Stats, metrics and trace resolve at the emission frontier (after
      // every earlier line of this connection has been answered), so the
      // snapshot they report is causally consistent with the stream
      // before them.
      Entry entry;
      entry.is_stats = *control == io::ControlKind::kStats;
      entry.is_metrics = *control == io::ControlKind::kMetrics;
      entry.is_trace = *control == io::ControlKind::kTrace;
      if (entry.is_trace) {
        // Parsed now so a malformed filter is a parse error at this
        // line's position, not a failure at the frontier.
        entry.trace_filter = trace_filter_from_json(doc);
      }
      entry.id = io::control_id(doc);
      entry.status = api::ResponseStatus::kOk;
      deliver(index, std::move(entry));
      return;
    }
    api::Request request = io::request_from_json_value(doc);
    // Captured for the rejection paths below: submit() consumes the
    // request without running it when the dispatcher is stopping.
    std::string id = request.id;
    std::string kind = request.kind();
    // A traced request allocates its Trace at accept — the first stamped
    // hop — but only when a ring exists to publish into; without one the
    // request solves normally and the flag is a no-op.
    std::shared_ptr<telemetry::Trace> trace;
    if (request.options.trace && options_.trace_ring != nullptr) {
      trace = std::make_shared<telemetry::Trace>(telemetry::Trace::next_id(),
                                                 kind);
      trace->add_event("accept");
    }
    if (std::string denial = check_quota(); !denial.empty()) {
      // Over quota: answered immediately with a structured error instead
      // of being queued — the shared worker pool never sees the request.
      if (options_.on_quota_rejection) options_.on_quota_rejection();
      if (trace != nullptr) trace->add_event("quota_rejected", denial);
      reject(std::move(id), std::move(kind), api::ErrorCode::kOverQuota,
             std::move(denial), /*quota=*/true, /*overload=*/false,
             std::move(trace));
      return;
    }
    if (options_.runtime_config) {
      // Overload shedding: when the routed worker's backlog is already at
      // the high-water mark, queueing this request would only add latency
      // to an answer that will likely miss its deadline anyway. Reject it
      // immediately with a *retryable* error — the client backs off and
      // retries once the backlog drains.
      const std::uint64_t high_water =
          options_.runtime_config->queue_high_water.load(
              std::memory_order_relaxed);
      if (high_water > 0 &&
          dispatcher_.queue_depth(dispatcher_.route(request)) >= high_water) {
        if (options_.on_overload_rejection) options_.on_overload_rejection();
        if (trace != nullptr) trace->add_event("overload_rejected");
        reject(std::move(id), std::move(kind), api::ErrorCode::kOverloaded,
               "service overloaded: worker queue at high-water mark; retry "
               "after backoff",
               /*quota=*/false, /*overload=*/true, std::move(trace));
        return;
      }
      // Requests that carry no deadline of their own inherit the daemon
      // default (0 = none). The budget starts at enqueue, inside
      // Dispatcher::submit.
      const std::uint64_t default_deadline =
          options_.runtime_config->default_deadline_ms.load(
              std::memory_order_relaxed);
      if (request.options.deadline_ms <= 0.0 && default_deadline > 0) {
        request.options.deadline_ms = static_cast<double>(default_deadline);
      }
    }
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    if (trace != nullptr) trace->add_event("quota", "ok");
    const telemetry::RequestKind telemetry_kind =
        telemetry::request_kind_from_string(kind);
    const bool accepted = dispatcher_.submit(
        std::move(request),
        [this, index, telemetry_kind, trace](api::Response r) {
          in_flight_.fetch_sub(1, std::memory_order_relaxed);
          Entry entry;
          entry.kind = telemetry_kind;
          entry.status = r.status;
          if (trace != nullptr) {
            if (r.error_code != api::ErrorCode::kNone) {
              entry.trace_error_code = api::to_string(r.error_code);
            }
            entry.trace = trace;
          }
          entry.line = io::write_json_compact(io::response_to_json_value(r));
          deliver(index, std::move(entry));
        },
        cancel_token_, trace);
    if (!accepted) {
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      if (trace != nullptr) trace->add_event("shed", "shutdown");
      reject(std::move(id), std::move(kind), api::ErrorCode::kShuttingDown,
             "service is shutting down", /*quota=*/false, /*overload=*/false,
             std::move(trace));
    }
  } catch (const std::exception& e) {
    // Identical to the solve_cli --batch contract: a line that does not
    // parse as a request still yields a response line at its position.
    reject(std::string(), "unknown", api::ErrorCode::kParse, e.what(),
           /*quota=*/false, /*overload=*/false);
  }
}

std::string JsonlSession::check_quota() {
  // With a RuntimeConfig attached, its (hot-reloadable) values override the
  // static per-session options — re-read per line so a set_config on any
  // connection governs the next line of every connection.
  std::size_t max_in_flight = options_.max_in_flight;
  double requests_per_second = options_.requests_per_second;
  double burst_option = options_.burst;
  if (options_.runtime_config) {
    max_in_flight = static_cast<std::size_t>(
        options_.runtime_config->max_in_flight.load(std::memory_order_relaxed));
    requests_per_second = options_.runtime_config->requests_per_second();
    burst_option = options_.runtime_config->burst();
  }
  if (max_in_flight > 0 &&
      in_flight_.load(std::memory_order_relaxed) >= max_in_flight) {
    return "over quota: more than " + std::to_string(max_in_flight) +
           " requests in flight on this connection";
  }
  if (requests_per_second > 0.0) {
    const double burst = burst_option > 0.0
                             ? burst_option
                             : std::max(1.0, requests_per_second);
    const auto now = std::chrono::steady_clock::now();
    if (!bucket_started_) {
      // The bucket starts full: a fresh connection may burst before the
      // steady-state rate applies.
      bucket_started_ = true;
      tokens_ = burst;
      last_refill_ = now;
    }
    const std::chrono::duration<double> elapsed = now - last_refill_;
    last_refill_ = now;
    tokens_ = std::min(burst,
                       tokens_ + elapsed.count() * requests_per_second);
    if (tokens_ < 1.0) {
      return "over quota: rate limit of " +
             std::to_string(requests_per_second) + " requests/s exceeded";
    }
    tokens_ -= 1.0;
  }
  return std::string();
}

void JsonlSession::deliver(std::uint64_t index, Entry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_.emplace(index, std::move(entry));
  advance_locked();
  // Notify *while holding the mutex*: the moment finish() observes
  // next_emit_ == submitted_ the caller may destroy this session, so the
  // condition variable must not be touched after the lock is released.
  emitted_cv_.notify_all();
}

void JsonlSession::advance_locked() {
  // Emit the contiguous ready prefix. Holding the mutex across the sink
  // keeps emission strictly serialised; workers completing other lines
  // meanwhile simply queue behind it.
  for (auto it = pending_.find(next_emit_); it != pending_.end();
       it = pending_.find(next_emit_)) {
    Entry entry = std::move(it->second);
    pending_.erase(it);
    ++next_emit_;
    if (entry.is_trace) {
      // Resolved at the frontier like stats/metrics: every earlier line of
      // this connection has been emitted, so its trace (if it completed
      // here) is already in the ring.
      JsonArray traces;
      if (options_.trace_ring != nullptr) {
        for (const std::shared_ptr<const telemetry::Trace>& trace :
             options_.trace_ring->collect(entry.trace_filter)) {
          traces.push_back(trace->to_json_value());
        }
      }
      JsonObject result;
      result["traces"] = JsonValue(std::move(traces));
      if (options_.trace_ring != nullptr) {
        result["recorded"] = JsonValue(
            static_cast<double>(options_.trace_ring->recorded()));
        result["capacity"] = JsonValue(
            static_cast<double>(options_.trace_ring->capacity()));
      }
      if (options_.trace_log != nullptr) {
        const telemetry::TraceLog::Stats ls = options_.trace_log->stats();
        JsonObject log;
        log["path"] = JsonValue(options_.trace_log->path());
        log["slow_ms"] = JsonValue(options_.trace_log->slow_ms());
        log["logged"] = JsonValue(static_cast<double>(ls.logged));
        log["write_errors"] =
            JsonValue(static_cast<double>(ls.write_errors));
        result["log"] = JsonValue(std::move(log));
      }
      const JsonValue envelope = io::control_response_envelope(
          io::ControlKind::kTrace, entry.id, JsonValue(std::move(result)));
      entry.line = io::write_json_compact(envelope);
    } else if (entry.is_stats || entry.is_metrics) {
      ServiceStats stats = dispatcher_.stats();
      // The transport owns its counters (accepts, slow-client disconnects,
      // outbox depths); the hook folds them into the dispatcher snapshot.
      if (options_.stats_hook) options_.stats_hook(stats);
      if (entry.is_metrics) {
        // Prometheus text exposition, JSON-string-wrapped to preserve the
        // one-line-per-response JSONL framing.
        JsonObject result;
        result["content_type"] = JsonValue("text/plain; version=0.0.4");
        result["text"] = JsonValue(metrics_exposition(
            stats, options_.telemetry, options_.structure_cache));
        const JsonValue envelope = io::control_response_envelope(
            io::ControlKind::kMetrics, entry.id, JsonValue(std::move(result)));
        entry.line = io::write_json_compact(envelope);
      } else {
        JsonValue result = service_stats_to_json_value(stats);
        if (options_.telemetry != nullptr) {
          result.as_object()["latency"] =
              latency_to_json_value(*options_.telemetry);
          result.as_object()["structures"] =
              structures_to_json_value(*options_.telemetry);
        }
        if (options_.structure_cache != nullptr) {
          result.as_object()["cache"] =
              cache_stats_to_json_value(*options_.structure_cache);
        }
        if (options_.runtime_config) {
          // The live limits ride along, so a set_config reload is
          // observable in the very next stats snapshot.
          result.as_object()["config"] =
              runtime_config_to_json_value(*options_.runtime_config);
        }
        const JsonValue envelope = io::control_response_envelope(
            io::ControlKind::kStats, entry.id, std::move(result));
        entry.line = io::write_json_compact(envelope);
      }
    }
    if (entry.is_quota_rejection) ++summary_.quota_rejections;
    if (entry.is_overload_rejection) ++summary_.overload_rejections;
    ++summary_.lines;
    switch (entry.status) {
      case api::ResponseStatus::kOk:
        ++summary_.ok;
        break;
      case api::ResponseStatus::kInfeasible:
        ++summary_.infeasible;
        break;
      case api::ResponseStatus::kError:
        ++summary_.errors;
        break;
    }
    if (sink_) {
      // The write stage covers the sink call: a real write-and-flush on
      // stdio connections, the outbox handoff (including any backpressure
      // wait on a full outbox) on socket connections.
      if (options_.telemetry != nullptr || entry.trace != nullptr) {
        const auto start = std::chrono::steady_clock::now();
        sink_(entry.line);
        const double write_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (options_.telemetry != nullptr) {
          options_.telemetry->histogram(entry.kind, telemetry::Stage::kWrite)
              .record(write_ms);
        }
        if (entry.trace != nullptr) entry.trace->add_span("write", write_ms);
      } else {
        sink_(entry.line);
      }
    }
    if (entry.trace != nullptr) {
      // The write span was the last hop: close the trace and publish it.
      // Closing here (not in the dispatcher) keeps wall_ms covering the
      // full pipeline including response emission.
      entry.trace->close(api::to_string(entry.status),
                         std::move(entry.trace_error_code));
      std::shared_ptr<const telemetry::Trace> done = std::move(entry.trace);
      if (options_.trace_ring != nullptr) options_.trace_ring->push(done);
      if (options_.trace_log != nullptr) options_.trace_log->offer(done);
    }
  }
}

StreamSummary JsonlSession::finish() {
  std::unique_lock<std::mutex> lock(mutex_);
  emitted_cv_.wait(lock, [&] { return next_emit_ == submitted_; });
  return summary_;
}

StreamSummary serve_jsonl(Dispatcher& dispatcher, std::istream& in,
                          std::ostream& out) {
  return serve_jsonl(dispatcher, in, out, SessionOptions{});
}

StreamSummary serve_jsonl(Dispatcher& dispatcher, std::istream& in,
                          std::ostream& out, SessionOptions options) {
  JsonlSession session(
      dispatcher,
      [&out](const std::string& line) {
        out << line << '\n';
        out.flush();
      },
      std::move(options));
  std::string line;
  while (std::getline(in, line)) {
    session.submit_line(line);
  }
  return session.finish();
}

}  // namespace bbs::service
