#include "bbs/service/jsonl_stream.hpp"

#include <algorithm>
#include <chrono>
#include <istream>
#include <ostream>

#include "bbs/io/api_io.hpp"
#include "bbs/io/service_io.hpp"

namespace bbs::service {

using io::JsonArray;
using io::JsonObject;
using io::JsonValue;

namespace {

JsonValue engine_stats_to_json_value(const api::EngineStats& stats) {
  JsonObject o;
  o["requests"] = JsonValue(static_cast<double>(stats.requests));
  o["ok"] = JsonValue(static_cast<double>(stats.ok));
  o["infeasible"] = JsonValue(static_cast<double>(stats.infeasible));
  o["errors"] = JsonValue(static_cast<double>(stats.errors));
  o["pool_hits"] = JsonValue(static_cast<double>(stats.pool_hits));
  o["pool_misses"] = JsonValue(static_cast<double>(stats.pool_misses));
  o["evictions"] = JsonValue(static_cast<double>(stats.evictions));
  o["symbolic_factorisations"] =
      JsonValue(static_cast<double>(stats.symbolic_factorisations));
  o["ipm_iterations"] = JsonValue(static_cast<double>(stats.ipm_iterations));
  o["solves"] = JsonValue(static_cast<double>(stats.solves));
  o["warm_started_solves"] =
      JsonValue(static_cast<double>(stats.warm_started_solves));
  return JsonValue(std::move(o));
}

}  // namespace

JsonValue service_stats_to_json_value(const ServiceStats& stats) {
  JsonObject root;
  root["requests"] = JsonValue(static_cast<double>(stats.requests));
  root["ok"] = JsonValue(static_cast<double>(stats.ok));
  root["infeasible"] = JsonValue(static_cast<double>(stats.infeasible));
  root["errors"] = JsonValue(static_cast<double>(stats.errors));
  root["warm_hits"] = JsonValue(static_cast<double>(stats.warm_hits));
  root["symbolic_factorisations"] =
      JsonValue(static_cast<double>(stats.symbolic_factorisations));
  root["queue_depth"] = JsonValue(static_cast<double>(stats.queue_depth));
  root["stolen"] = JsonValue(static_cast<double>(stats.stolen));
  root["connections_accepted"] =
      JsonValue(static_cast<double>(stats.connections_accepted));
  root["accept_failures"] =
      JsonValue(static_cast<double>(stats.accept_failures));
  root["slow_client_disconnects"] =
      JsonValue(static_cast<double>(stats.slow_client_disconnects));
  root["quota_rejections"] =
      JsonValue(static_cast<double>(stats.quota_rejections));
  JsonArray outboxes;
  for (const std::size_t depth : stats.connection_outbox_depths) {
    outboxes.push_back(JsonValue(static_cast<double>(depth)));
  }
  root["connection_outbox_depths"] = JsonValue(std::move(outboxes));
  JsonArray workers;
  for (const WorkerStats& ws : stats.workers) {
    JsonObject w;
    w["worker"] = JsonValue(static_cast<double>(ws.worker));
    w["queue_depth"] = JsonValue(static_cast<double>(ws.queue_depth));
    w["pooled_sessions"] = JsonValue(static_cast<double>(ws.pooled_sessions));
    w["stolen"] = JsonValue(static_cast<double>(ws.stolen));
    w["engine"] = engine_stats_to_json_value(ws.engine);
    workers.push_back(JsonValue(std::move(w)));
  }
  root["workers"] = JsonValue(std::move(workers));
  return JsonValue(std::move(root));
}

JsonlSession::JsonlSession(Dispatcher& dispatcher, Sink sink,
                           SessionOptions options)
    : dispatcher_(dispatcher),
      sink_(std::move(sink)),
      options_(std::move(options)) {}

JsonlSession::~JsonlSession() { finish(); }

void JsonlSession::submit_line(const std::string& line) {
  if (line.find_first_not_of(" \t\r") == std::string::npos) return;
  const std::uint64_t index = submitted_++;

  try {
    const JsonValue doc = io::parse_json(line);
    if (const auto control = io::control_kind(doc)) {
      // Control messages resolve at the emission frontier (after every
      // earlier line of this connection has been answered), so the snapshot
      // they report is causally consistent with the stream before them.
      Entry entry;
      entry.is_stats = true;
      entry.id = io::control_id(doc);
      entry.status = api::ResponseStatus::kOk;
      deliver(index, std::move(entry));
      return;
    }
    api::Request request = io::request_from_json_value(doc);
    // Captured for the shutting-down fallback below: submit() consumes the
    // request without running it when the dispatcher is stopping.
    std::string id = request.id;
    std::string kind = request.kind();
    if (std::string denial = check_quota(); !denial.empty()) {
      // Over quota: answered immediately with a structured error instead
      // of being queued — the shared worker pool never sees the request.
      if (options_.on_quota_rejection) options_.on_quota_rejection();
      api::Response r;
      r.id = std::move(id);
      r.kind = std::move(kind);
      r.status = api::ResponseStatus::kError;
      r.error = std::move(denial);
      Entry entry;
      entry.is_quota_rejection = true;
      entry.status = r.status;
      entry.line = io::write_json_compact(io::response_to_json_value(r));
      deliver(index, std::move(entry));
      return;
    }
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    const bool accepted =
        dispatcher_.submit(std::move(request), [this, index](api::Response r) {
          in_flight_.fetch_sub(1, std::memory_order_relaxed);
          Entry entry;
          entry.status = r.status;
          entry.line = io::write_json_compact(io::response_to_json_value(r));
          deliver(index, std::move(entry));
        });
    if (!accepted) {
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      api::Response r;
      r.id = std::move(id);
      r.kind = std::move(kind);
      r.status = api::ResponseStatus::kError;
      r.error = "service is shutting down";
      Entry entry;
      entry.status = r.status;
      entry.line = io::write_json_compact(io::response_to_json_value(r));
      deliver(index, std::move(entry));
    }
  } catch (const std::exception& e) {
    // Identical to the solve_cli --batch contract: a line that does not
    // parse as a request still yields a response line at its position.
    api::Response r;
    r.kind = "unknown";
    r.status = api::ResponseStatus::kError;
    r.error = e.what();
    Entry entry;
    entry.status = r.status;
    entry.line = io::write_json_compact(io::response_to_json_value(r));
    deliver(index, std::move(entry));
  }
}

std::string JsonlSession::check_quota() {
  if (options_.max_in_flight > 0 &&
      in_flight_.load(std::memory_order_relaxed) >= options_.max_in_flight) {
    return "over quota: more than " + std::to_string(options_.max_in_flight) +
           " requests in flight on this connection";
  }
  if (options_.requests_per_second > 0.0) {
    const double burst = options_.burst > 0.0
                             ? options_.burst
                             : std::max(1.0, options_.requests_per_second);
    const auto now = std::chrono::steady_clock::now();
    if (!bucket_started_) {
      // The bucket starts full: a fresh connection may burst before the
      // steady-state rate applies.
      bucket_started_ = true;
      tokens_ = burst;
      last_refill_ = now;
    }
    const std::chrono::duration<double> elapsed = now - last_refill_;
    last_refill_ = now;
    tokens_ = std::min(burst,
                       tokens_ + elapsed.count() * options_.requests_per_second);
    if (tokens_ < 1.0) {
      return "over quota: rate limit of " +
             std::to_string(options_.requests_per_second) +
             " requests/s exceeded";
    }
    tokens_ -= 1.0;
  }
  return std::string();
}

void JsonlSession::deliver(std::uint64_t index, Entry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_.emplace(index, std::move(entry));
  advance_locked();
  // Notify *while holding the mutex*: the moment finish() observes
  // next_emit_ == submitted_ the caller may destroy this session, so the
  // condition variable must not be touched after the lock is released.
  emitted_cv_.notify_all();
}

void JsonlSession::advance_locked() {
  // Emit the contiguous ready prefix. Holding the mutex across the sink
  // keeps emission strictly serialised; workers completing other lines
  // meanwhile simply queue behind it.
  for (auto it = pending_.find(next_emit_); it != pending_.end();
       it = pending_.find(next_emit_)) {
    Entry entry = std::move(it->second);
    pending_.erase(it);
    ++next_emit_;
    if (entry.is_stats) {
      ServiceStats stats = dispatcher_.stats();
      // The transport owns its counters (accepts, slow-client disconnects,
      // outbox depths); the hook folds them into the dispatcher snapshot.
      if (options_.stats_hook) options_.stats_hook(stats);
      const JsonValue envelope = io::control_response_envelope(
          io::ControlKind::kStats, entry.id,
          service_stats_to_json_value(stats));
      entry.line = io::write_json_compact(envelope);
    }
    if (entry.is_quota_rejection) ++summary_.quota_rejections;
    ++summary_.lines;
    switch (entry.status) {
      case api::ResponseStatus::kOk:
        ++summary_.ok;
        break;
      case api::ResponseStatus::kInfeasible:
        ++summary_.infeasible;
        break;
      case api::ResponseStatus::kError:
        ++summary_.errors;
        break;
    }
    if (sink_) sink_(entry.line);
  }
}

StreamSummary JsonlSession::finish() {
  std::unique_lock<std::mutex> lock(mutex_);
  emitted_cv_.wait(lock, [&] { return next_emit_ == submitted_; });
  return summary_;
}

StreamSummary serve_jsonl(Dispatcher& dispatcher, std::istream& in,
                          std::ostream& out) {
  JsonlSession session(dispatcher, [&out](const std::string& line) {
    out << line << '\n';
    out.flush();
  });
  std::string line;
  while (std::getline(in, line)) {
    session.submit_line(line);
  }
  return session.finish();
}

}  // namespace bbs::service
