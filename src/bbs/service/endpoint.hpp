// Listen-endpoint grammar of the service daemon.
//
// One `--listen` string names either transport the SocketServer speaks:
//
//   unix:/run/bbs.sock        AF_UNIX filesystem socket
//   /run/bbs.sock             bare path — AF_UNIX (back compat with PR 5)
//   tcp://127.0.0.1:7421      AF_INET
//   tcp://[::1]:7421          AF_INET6 (host in brackets)
//   tcp://0.0.0.0:0           port 0 — kernel picks; SocketServer::endpoint()
//                             reports the bound port
//
// Parsing is strict (ModelError on malformed specs) so a typo'd endpoint is
// a startup failure, not a silently-wrong bind.
#pragma once

#include <cstdint>
#include <string>

namespace bbs::service {

struct Endpoint {
  enum class Kind { kUnix, kTcp };

  Kind kind = Kind::kUnix;
  std::string path;  ///< AF_UNIX socket path (kUnix)
  std::string host;  ///< numeric address or hostname, no brackets (kTcp)
  std::uint16_t port = 0;  ///< kTcp; 0 lets the kernel choose

  /// Round-trips to the canonical spec string ("unix:/p", "tcp://h:p",
  /// IPv6 hosts re-bracketed) — what the daemon logs as "listening on …".
  std::string to_string() const;
};

/// Parses a `--listen` spec per the grammar above. Throws ModelError on an
/// empty spec, a missing/non-numeric/out-of-range port, an empty host, or
/// an unterminated bracket.
Endpoint parse_endpoint(const std::string& spec);

}  // namespace bbs::service
