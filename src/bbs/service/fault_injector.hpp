// Deterministic fault injection for the service daemon.
//
// Chaos tests (and operators reproducing incidents) need the daemon to
// misbehave *on demand*: a worker that dallies before each task, a solver
// that fails numerically at a chosen IPM iteration, a writer thread that
// stalls before each send. The FaultInjector is a process-wide registry of
// such failpoints, armed either programmatically (tests call configure())
// or through the BBS_FAILPOINTS environment variable:
//
//   BBS_FAILPOINTS="worker.delay_ms=200;ipm.fail_at=3" bbs_serve ...
//
// Syntax: semicolon-separated `name=value` pairs (integer values).
// Supported failpoints:
//
//   worker.delay_ms   dispatcher workers sleep this long before every task
//                     (inflates queue wait deterministically — drives the
//                     queue-expiry shedding and overload paths)
//   ipm.fail_at       every solve is forced into a numerical failure at
//                     this IPM iteration (0-based; -1 disarms). The fault
//                     re-fires on every recovery-ladder retry, so it ends
//                     in a hard structured numerical_failure.
//   ipm.fail_once     like ipm.fail_at, but only the *first* attempt of
//                     each solve fails — the recovery ladder then rescues
//                     it, which shows up in the recovered_solves stats
//                     (drives the ladder's end-to-end chaos coverage)
//   outbox.stall_ms   the socket writer thread sleeps this long before
//                     every send (drives the slow-client/write-deadline
//                     paths without a real slow client)
//
// Cost when unset: one relaxed atomic load per probe site — the injector
// is disabled unless configure()/configure_from_env() armed at least one
// failpoint, and every probe checks enabled() first.
#pragma once

#include <atomic>
#include <string>

namespace bbs::service {

class FaultInjector {
 public:
  /// The process-wide instance every probe site consults.
  static FaultInjector& instance();

  /// Parses a failpoint spec ("name=value;name=value"). Unknown names and
  /// malformed pairs throw ModelError — a typo'd failpoint silently doing
  /// nothing would defeat the point of deterministic chaos. An empty spec
  /// is a no-op.
  void configure(const std::string& spec);

  /// Reads BBS_FAILPOINTS from the environment; no-op when unset/empty.
  /// Called once by the daemon entry points.
  void configure_from_env();

  /// Disarms every failpoint (tests call this in teardown).
  void clear();

  /// False until a failpoint is armed — the fast path every probe checks.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Milliseconds a dispatcher worker sleeps before each task (0 = off).
  int worker_delay_ms() const {
    return worker_delay_ms_.load(std::memory_order_relaxed);
  }
  /// IPM iteration at which solves are forced to fail (-1 = off).
  int ipm_fail_at() const {
    return ipm_fail_at_.load(std::memory_order_relaxed);
  }
  /// IPM iteration at which only the first attempt of each solve fails,
  /// leaving the recovery ladder to rescue it (-1 = off).
  int ipm_fail_once() const {
    return ipm_fail_once_.load(std::memory_order_relaxed);
  }
  /// Milliseconds the socket writer sleeps before each send (0 = off).
  int outbox_stall_ms() const {
    return outbox_stall_ms_.load(std::memory_order_relaxed);
  }

  /// Human-readable list of armed failpoints ("" when disabled) — the
  /// daemon logs this at startup so chaos runs are self-describing.
  std::string describe() const;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<int> worker_delay_ms_{0};
  std::atomic<int> ipm_fail_at_{-1};
  std::atomic<int> ipm_fail_once_{-1};
  std::atomic<int> outbox_stall_ms_{0};
};

}  // namespace bbs::service
