// Bounded blocking MPMC queue — the backpressure primitive of the service
// daemon.
//
// Producers (connection reader threads) block in push() while the queue is
// full, which propagates backpressure all the way to the client socket: a
// client that outpaces the solver workers stops being read instead of
// growing an unbounded backlog. Consumers (dispatcher workers) block in
// pop() while the queue is empty.
//
// Shutdown is two-phase by design: close() stops producers immediately but
// lets consumers drain the backlog (graceful shutdown completes every
// accepted request), close(/*discard_pending=*/true) additionally drops the
// backlog (fast abort — pending items are destroyed unprocessed).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "bbs/common/assert.hpp"

namespace bbs::service {

/// Outcome of a deadline-bounded push — the writer-outbox policy primitive:
/// kTimeout means the consumer made no room within the deadline (a slow
/// client), which the caller turns into a disconnect instead of blocking on.
enum class PushResult {
  kPushed,
  kClosed,
  kTimeout,
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    BBS_REQUIRE(capacity > 0, "BoundedQueue: capacity must be positive");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false (item dropped) once the
  /// queue is closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    // Notify before releasing the mutex: a producer may race queue
    // destruction (close() + join happen on another thread), and touching
    // the condition variable after the unlock would be use-after-free the
    // moment the owner tears the queue down.
    not_empty_.notify_one();
    return true;
  }

  /// Deadline-bounded push: blocks at most `timeout` while the queue is
  /// full. kTimeout is the slow-consumer signal — the queue is unchanged
  /// and the caller decides the policy (the socket server disconnects the
  /// client rather than wait longer on a solver worker's time).
  PushResult push_wait_for(T item, std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!not_full_.wait_for(lock, timeout, [&] {
          return closed_ || items_.size() < capacity_;
        })) {
      return PushResult::kTimeout;
    }
    if (closed_) return PushResult::kClosed;
    items_.push_back(std::move(item));
    not_empty_.notify_one();  // under the mutex, same lifetime rationale
    return PushResult::kPushed;
  }

  /// Blocks while the queue is empty. After close(), drains the remaining
  /// backlog and then returns nullopt — the consumer's exit signal.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    not_full_.notify_one();  // under the mutex, same lifetime rationale
    return item;
  }

  /// Non-blocking pop; nullopt when nothing is queued right now. This is
  /// the steal primitive: an idle worker lifting one task off a peer's
  /// queue competes with that peer's own pop() under the same mutex, so a
  /// task is consumed exactly once.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Timed pop: like pop() but gives up after `timeout`. nullopt means
  /// either "nothing arrived in time" or "closed and drained" — callers
  /// that must tell them apart check closed() && size() == 0, which is
  /// stable once true (a closed queue accepts no further items).
  std::optional<T> pop_for(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait_for(lock, timeout,
                        [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue: every blocked and future push() fails, pop() drains
  /// what is already queued and then signals exhaustion. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Fast-abort close: additionally removes the backlog and hands it to
  /// the caller, who owes every item a completion — work accepted by a
  /// push() must never just vanish (a waiter counting completions would
  /// hang forever).
  std::deque<T> close_and_take() {
    std::deque<T> taken;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      taken.swap(items_);
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    return taken;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace bbs::service
