// One JSONL connection of the service daemon: framing, dispatch and
// in-order response reassembly.
//
// A JsonlSession consumes request lines (from stdin or one socket
// connection), dispatches them through the sharded Dispatcher, and emits
// exactly one response line per input line **in input order** — workers
// complete out of order, so every completion carries its request's line
// index and a reorder buffer holds responses back until their turn. The
// sink is invoked once per line, in order, and should flush: piped and
// socket consumers see each response as soon as it is sequenced.
//
// The line protocol matches `solve_cli --batch` exactly (same parse errors,
// same serialisation, blank lines skipped), extended with the control
// messages of io/service_io.hpp: a {"kind":"stats"} line is answered with a
// ServiceStats snapshot taken when the line reaches the emission frontier,
// i.e. after every earlier line of this connection has been answered.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "bbs/io/json.hpp"
#include "bbs/service/dispatcher.hpp"
#include "bbs/service/runtime_config.hpp"
#include "bbs/telemetry/service_telemetry.hpp"
#include "bbs/telemetry/trace.hpp"

namespace bbs::telemetry {
class StructureCache;
}  // namespace bbs::telemetry

namespace bbs::service {

struct StreamSummary {
  std::uint64_t lines = 0;  ///< non-blank lines consumed (== lines emitted)
  std::uint64_t ok = 0;
  std::uint64_t infeasible = 0;
  std::uint64_t errors = 0;
  /// Lines answered with an over-quota error (a subset of `errors`).
  std::uint64_t quota_rejections = 0;
  /// Lines rejected with a retryable `overloaded` error because the routed
  /// worker's queue was above the high-water mark (a subset of `errors`).
  std::uint64_t overload_rejections = 0;

  bool all_ok() const { return infeasible == 0 && errors == 0; }
};

/// Per-connection policy and daemon hooks of one JsonlSession. The quota
/// caps protect the shared worker pool from a single greedy connection:
/// an over-quota request line is answered immediately with a structured
/// error response instead of being queued (the connection keeps flowing —
/// quota exhaustion is per line, not a disconnect).
struct SessionOptions {
  /// Max requests of this connection dispatched but not yet completed;
  /// 0 = unlimited.
  std::size_t max_in_flight = 0;
  /// Token-bucket rate limit on request lines; 0 = unlimited. Control
  /// lines ({"kind":"stats"}) are never charged.
  double requests_per_second = 0.0;
  /// Token-bucket burst size; 0 picks max(1, requests_per_second).
  double burst = 0.0;
  /// Invoked (from the submit thread) for every over-quota rejection, so
  /// the daemon front end can aggregate across connections.
  std::function<void()> on_quota_rejection;
  /// Lets the transport layer fill the transport-owned ServiceStats fields
  /// (accept failures, slow-client disconnects, outbox depths) into a
  /// {"kind":"stats"} response. Invoked on the emitting thread with the
  /// dispatcher snapshot already taken; must not call back into the
  /// session and must not throw.
  std::function<void(ServiceStats&)> stats_hook;
  /// Hot-reloadable daemon-wide limits. When set it *overrides* the static
  /// max_in_flight / requests_per_second / burst above (values are read
  /// per request line, so a {"kind":"set_config"} reload on any connection
  /// takes effect on the next line of every connection), supplies the
  /// default deadline stamped on requests without their own deadline_ms,
  /// and arms the overload high-water check. Without it set_config lines
  /// are answered with an error and overload shedding is off.
  std::shared_ptr<RuntimeConfig> runtime_config;
  /// Invoked (from the submit thread) for every overload rejection.
  std::function<void()> on_overload_rejection;
  /// Invoked (from the submit thread) after a successful set_config with a
  /// human-readable description of the applied changes — the daemon logs
  /// it to stderr.
  std::function<void(const std::string&)> on_config_change;
  /// Optional service telemetry (not owned; shared with the Dispatcher).
  /// When set, stats responses carry "latency"/"structures" sections, the
  /// write stage of every emitted line is recorded, and {"kind":"metrics"}
  /// exposes the full histogram matrix.
  telemetry::ServiceTelemetry* telemetry = nullptr;
  /// Optional persistent structure cache (not owned) — its counters ride
  /// along in stats responses and the metrics exposition.
  telemetry::StructureCache* structure_cache = nullptr;
  /// Optional trace ring (not owned; shared daemon-wide). When set, a
  /// request line with options.trace allocates a telemetry::Trace that is
  /// stamped at every pipeline hop and — once its response line has been
  /// written — pushed here for retrieval via {"kind":"trace"}. Without it
  /// trace requests still solve normally but no trace is recorded, and
  /// {"kind":"trace"} control lines are answered with an error.
  telemetry::TraceRing* trace_ring = nullptr;
  /// Optional slow/error trace log (not owned). Every completed trace is
  /// offered; the log keeps the ones that qualify (see TraceLog).
  telemetry::TraceLog* trace_log = nullptr;
};

/// Serialises a ServiceStats snapshot into the "result" object of the stats
/// control response.
io::JsonValue service_stats_to_json_value(const ServiceStats& stats);

/// Serialises the current runtime limits (embedded as "config" in stats
/// responses, so a set_config reload is observable in the next snapshot).
io::JsonValue runtime_config_to_json_value(const RuntimeConfig& config);

/// Applies one {"kind":"set_config"} document to `config`. Only the keys
/// present are touched (0 turns a limit off); unknown keys and non-numeric
/// values throw ModelError. Returns the applied changes as a JSON object
/// (the control response's "result") and appends a human-readable
/// description of them to `description`.
io::JsonValue apply_set_config(const io::JsonValue& doc, RuntimeConfig& config,
                               std::string& description);

/// Renders a ServiceStats snapshot (plus optional telemetry/cache state)
/// as Prometheus text exposition format 0.0.4 — counters, gauges and
/// per-(kind, stage) latency as native histograms (cumulative `le` buckets
/// at octave granularity plus _sum/_count). The {"kind":"metrics"} control
/// response wraps this text in JSON to keep the JSONL framing. Null
/// telemetry/cache simply omit their sections.
std::string metrics_exposition(const ServiceStats& stats,
                               const telemetry::ServiceTelemetry* telemetry,
                               const telemetry::StructureCache* cache);

class JsonlSession {
 public:
  /// Receives each response line (no trailing newline), in input order,
  /// possibly from a worker thread; it must write-and-flush and not throw.
  using Sink = std::function<void(const std::string& line)>;

  JsonlSession(Dispatcher& dispatcher, Sink sink, SessionOptions options = {});
  /// Implies finish() — a destroyed session has emitted every line it
  /// consumed.
  ~JsonlSession();

  JsonlSession(const JsonlSession&) = delete;
  JsonlSession& operator=(const JsonlSession&) = delete;

  /// Consumes one input line: parses, dispatches, and arranges for the
  /// response to be emitted at this line's position. Blank lines are
  /// skipped (no response line). Blocks while the routed worker's queue is
  /// full — the connection-level backpressure. Never throws on malformed
  /// input: a line that does not parse as a request is answered with an
  /// error response at its position, keeping the streams aligned.
  void submit_line(const std::string& line);

  /// Waits until every consumed line has been answered and emitted, then
  /// returns the summary. Call after the input is exhausted.
  StreamSummary finish();

  /// Flips this connection's cancellation token: requests still queued are
  /// shed without solving, a request mid-solve terminates within one IPM
  /// iteration. Called by the transport when the client is gone (slow
  /// client disconnect) — every pending line still gets its (cancelled)
  /// response, so finish() never hangs. Safe from any thread.
  void cancel_pending();

 private:
  struct Entry {
    bool is_stats = false;
    bool is_metrics = false;
    bool is_trace = false;
    bool is_quota_rejection = false;
    bool is_overload_rejection = false;
    /// Request kind for the write-stage latency histogram (control lines
    /// and rejections record under kOther).
    telemetry::RequestKind kind = telemetry::RequestKind::kOther;
    std::string line;      ///< serialised response (requests)
    std::string id;        ///< control-message id echo (stats/metrics/trace)
    api::ResponseStatus status = api::ResponseStatus::kError;
    /// Parsed filter of a {"kind":"trace"} line (resolved at the frontier).
    telemetry::TraceFilter trace_filter;
    /// The traced request's trace: the write span is stamped around the
    /// sink call, then the trace is closed and published (ring + log).
    std::shared_ptr<telemetry::Trace> trace;
    /// Machine-readable error code the trace closes with ("" when ok).
    std::string trace_error_code;
  };

  void deliver(std::uint64_t index, Entry entry);
  void advance_locked();
  /// Non-empty = rejection reason. Charged per request line; only called
  /// from the (single) submit thread, so the bucket state is unguarded.
  std::string check_quota();

  Dispatcher& dispatcher_;
  Sink sink_;
  SessionOptions options_;
  /// Shared with every submit of this connection (see cancel_pending()).
  std::shared_ptr<solver::CancelToken> cancel_token_;
  std::mutex mutex_;
  std::condition_variable emitted_cv_;
  std::map<std::uint64_t, Entry> pending_;
  std::uint64_t submitted_ = 0;
  std::uint64_t next_emit_ = 0;
  StreamSummary summary_;
  /// Dispatched to the Dispatcher, completion not yet delivered.
  std::atomic<std::size_t> in_flight_{0};
  // Token bucket (submit-thread only).
  double tokens_ = 0.0;
  std::chrono::steady_clock::time_point last_refill_{};
  bool bucket_started_ = false;
};

/// Pumps a whole stream through a session: one request per input line, one
/// response per output line (flushed), in order. The stdio mode of
/// bbs_serve and the batch smoke tests run on this.
StreamSummary serve_jsonl(Dispatcher& dispatcher, std::istream& in,
                          std::ostream& out);
StreamSummary serve_jsonl(Dispatcher& dispatcher, std::istream& in,
                          std::ostream& out, SessionOptions options);

}  // namespace bbs::service
