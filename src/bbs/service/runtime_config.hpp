// Hot-reloadable runtime limits of the service daemon.
//
// A long-lived daemon cannot restart to pick up new quota limits or
// deadlines, so the mutable knobs live in one shared RuntimeConfig of
// plain atomics: every JsonlSession and the socket writer read the
// current values per decision (per request line, per write), and a
// {"kind":"set_config",...} control line rewrites them in place. Readers
// never lock; a reload is visible to the very next request line on every
// connection.
//
// 0 consistently means "unlimited / disabled" (matching SessionOptions),
// so a set_config that writes 0 turns the corresponding limit off.
#pragma once

#include <atomic>
#include <cstdint>

namespace bbs::service {

struct RuntimeConfig {
  /// Per-connection cap on dispatched-but-uncompleted requests (0 = off).
  std::atomic<std::uint64_t> max_in_flight{0};
  /// Per-connection token-bucket rate (requests/s, 0 = off). A double
  /// atomic: quantising (e.g. to millirequests/s) would round a tiny but
  /// positive limit like 1e-6 down to 0 — silently *unlimited*, the
  /// dangerous direction. std::atomic<double> is lock-free on the
  /// platforms the daemon targets.
  std::atomic<double> requests_per_second_raw{0.0};
  /// Token-bucket burst (requests, 0 = derived from the rate).
  std::atomic<double> burst_raw{0.0};
  /// Deadline stamped on requests that do not carry their own
  /// options.deadline_ms (milliseconds, 0 = none).
  std::atomic<std::uint64_t> default_deadline_ms{0};
  /// Overload high-water mark: when the routed worker's queue already
  /// holds at least this many tasks, new request lines are rejected
  /// immediately with a retryable `overloaded` error instead of queueing
  /// behind a backlog they would only deepen (0 = disabled).
  std::atomic<std::uint64_t> queue_high_water{0};
  /// Socket write deadline (ms a full outbox may stall before the
  /// connection is dropped as a slow client).
  std::atomic<std::int64_t> write_deadline_ms{2000};

  double requests_per_second() const {
    return requests_per_second_raw.load(std::memory_order_relaxed);
  }
  void set_requests_per_second(double value) {
    requests_per_second_raw.store(value > 0.0 ? value : 0.0,
                                  std::memory_order_relaxed);
  }
  double burst() const { return burst_raw.load(std::memory_order_relaxed); }
  void set_burst(double value) {
    burst_raw.store(value > 0.0 ? value : 0.0, std::memory_order_relaxed);
  }
};

}  // namespace bbs::service
