#include "bbs/service/socket_server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bbs/common/assert.hpp"
#include "bbs/service/jsonl_stream.hpp"

namespace bbs::service {

namespace {

[[noreturn]] void socket_error(const std::string& what) {
  throw ModelError("SocketServer: " + what + ": " + std::strerror(errno));
}

/// Writes the whole buffer; MSG_NOSIGNAL turns a disappeared client into
/// EPIPE instead of killing the daemon. Returns false once the connection
/// is unwritable (the caller stops emitting).
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SocketServer::SocketServer(Dispatcher& dispatcher, std::string socket_path)
    : dispatcher_(dispatcher), socket_path_(std::move(socket_path)) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  BBS_REQUIRE(socket_path_.size() < sizeof addr.sun_path,
              "SocketServer: socket path too long for sockaddr_un");
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  // A throw below skips the destructor (the object was never constructed),
  // so the fds opened so far must be released here — an embedder probing
  // candidate socket paths would otherwise leak descriptors per attempt.
  try {
    if (::pipe(wake_fds_) != 0) socket_error("pipe");
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) socket_error("socket");
    // The daemon owns its socket path: a stale file from a previous run
    // (or a crashed daemon) would make bind fail with EADDRINUSE forever.
    ::unlink(socket_path_.c_str());
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
      socket_error("bind '" + socket_path_ + "'");
    }
    if (::listen(listen_fd_, 16) != 0) socket_error("listen");
  } catch (...) {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_fds_[0] >= 0) {
      ::close(wake_fds_[0]);
      ::close(wake_fds_[1]);
    }
    throw;
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

SocketServer::~SocketServer() { stop(); }

std::uint64_t SocketServer::connections_accepted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accepted_;
}

void SocketServer::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_fds_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Transient resource exhaustion must not retire the accept loop —
        // a daemon that silently stops accepting looks healthy while every
        // new client hangs. Back off briefly and retry.
        std::fprintf(stderr, "bbs SocketServer: accept: %s (retrying)\n",
                     std::strerror(errno));
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      break;  // listener closed (stop) or unrecoverable
    }
    // Bound how long a response write may block on a client that stops
    // reading: without this a full client socket buffer parks a worker
    // thread inside the connection's sink forever (stalling its whole
    // shard) and stop() could never join the handler.
    const timeval send_timeout{10, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                 sizeof send_timeout);
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) {
      ::close(fd);
      break;
    }
    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    raw->fd = fd;
    ++accepted_;
    connections_.push_back(std::move(connection));
    raw->thread = std::thread([this, raw] { handle_connection(raw); });
  }
}

void SocketServer::handle_connection(Connection* connection) {
  const int fd = connection->fd;
  // Once a write fails (client gone, or SO_SNDTIMEO expired on a client
  // that stopped reading) the connection is unwritable for good: later
  // lines are skipped instead of each eating another timeout.
  std::atomic<bool> writable{true};
  JsonlSession session(dispatcher_, [fd, &writable](const std::string& line) {
    if (!writable.load(std::memory_order_relaxed)) return;
    if (!write_all(fd, line + "\n")) {
      writable.store(false, std::memory_order_relaxed);
    }
  });

  // Read-and-split loop. stop() shuts down the read side, which surfaces
  // here as EOF; whatever was already submitted still drains through
  // finish() below, so a shutdown mid-stream answers every line it
  // consumed.
  std::string carry;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // EOF: client finished or stop() intervened
    carry.append(buf, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = carry.find('\n', start); nl != std::string::npos;
         nl = carry.find('\n', start)) {
      session.submit_line(carry.substr(start, nl - start));
      start = nl + 1;
    }
    carry.erase(0, start);
  }
  if (!carry.empty()) session.submit_line(carry);  // unterminated last line
  session.finish();

  std::lock_guard<std::mutex> lock(mutex_);
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  connection->fd = -1;
}

void SocketServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Wake and retire the accept loop first so no new connection threads
  // appear while we iterate.
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], "x", 1);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& connection : connections_) {
      // EOF the reader; the handler drains and closes the fd itself (fd
      // lifetime is owned by the handler thread — see handle_connection).
      if (connection->fd != -1) ::shutdown(connection->fd, SHUT_RD);
    }
  }
  for (auto& connection : connections_) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  wake_fds_[0] = wake_fds_[1] = -1;
  ::unlink(socket_path_.c_str());
}

}  // namespace bbs::service
