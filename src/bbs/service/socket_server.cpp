#include "bbs/service/socket_server.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bbs/common/assert.hpp"
#include "bbs/service/fault_injector.hpp"

namespace bbs::service {

namespace {

[[noreturn]] void socket_error(const std::string& what) {
  throw ModelError("SocketServer: " + what + ": " + std::strerror(errno));
}

/// Writes the whole buffer; MSG_NOSIGNAL turns a disappeared client into
/// EPIPE instead of killing the daemon. Returns false once the connection
/// is unwritable (the caller stops emitting and EOFs the socket).
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

sockaddr_un unix_sockaddr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  BBS_REQUIRE(path.size() < sizeof addr.sun_path,
              "SocketServer: socket path too long for sockaddr_un");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

SocketServer::SocketServer(Dispatcher& dispatcher, Endpoint endpoint,
                           SocketServerOptions options)
    : dispatcher_(dispatcher),
      endpoint_(std::move(endpoint)),
      options_(options) {
  // A throw below skips the destructor (the object was never constructed),
  // so the fds opened so far must be released here — an embedder probing
  // candidate endpoints would otherwise leak descriptors per attempt.
  try {
    if (::pipe(wake_fds_) != 0) socket_error("pipe");
    if (endpoint_.kind == Endpoint::Kind::kUnix) {
      listen_unix();
    } else {
      listen_tcp();
    }
  } catch (...) {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_fds_[0] >= 0) {
      ::close(wake_fds_[0]);
      ::close(wake_fds_[1]);
    }
    throw;
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

SocketServer::SocketServer(Dispatcher& dispatcher, std::string socket_path)
    : SocketServer(dispatcher,
                   Endpoint{Endpoint::Kind::kUnix, std::move(socket_path),
                            std::string(), 0}) {}

SocketServer::~SocketServer() { stop(); }

void SocketServer::listen_unix() {
  const sockaddr_un addr = unix_sockaddr(endpoint_.path);
  // The daemon owns its socket path, but only when nothing lives there: a
  // blind unlink would silently steal a *running* daemon's socket. Probe
  // with connect() first — a live listener answers (refuse to start), a
  // stale file from a crashed daemon refuses the connection (clean it up),
  // and anything that is not a socket is never deleted.
  struct stat st {};
  if (::lstat(endpoint_.path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      throw ModelError("SocketServer: '" + endpoint_.path +
                       "' exists and is not a socket; refusing to replace it");
    }
    const int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (probe < 0) socket_error("socket");
    const int rc =
        ::connect(probe, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
    const int probe_errno = errno;  // close() below may clobber errno
    ::close(probe);
    if (rc == 0) {
      throw ModelError("SocketServer: a live daemon is already listening on '" +
                       endpoint_.path + "'");
    }
    if (probe_errno != ECONNREFUSED && probe_errno != ENOENT) {
      errno = probe_errno;
      socket_error("probe connect '" + endpoint_.path + "'");
    }
    // ECONNREFUSED: bound once, nobody listening — genuinely stale.
    ::unlink(endpoint_.path.c_str());
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) socket_error("socket");
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    socket_error("bind '" + endpoint_.path + "'");
  }
  if (::listen(listen_fd_, 16) != 0) socket_error("listen");
}

void SocketServer::listen_tcp() {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
  addrinfo* results = nullptr;
  const int gai = ::getaddrinfo(endpoint_.host.c_str(),
                                std::to_string(endpoint_.port).c_str(), &hints,
                                &results);
  if (gai != 0) {
    throw ModelError("SocketServer: cannot resolve '" + endpoint_.to_string() +
                     "': " + ::gai_strerror(gai));
  }
  int bind_errno = 0;
  for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                            ai->ai_protocol);
    if (fd < 0) {
      bind_errno = errno;
      continue;
    }
    // A daemon restart must not wait out TIME_WAIT on its own port.
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      listen_fd_ = fd;
      break;
    }
    bind_errno = errno;
    ::close(fd);
  }
  ::freeaddrinfo(results);
  if (listen_fd_ < 0) {
    errno = bind_errno;
    socket_error("bind '" + endpoint_.to_string() + "'");
  }
  if (::listen(listen_fd_, 64) != 0) socket_error("listen");
  if (endpoint_.port == 0) {
    // Port 0 asked the kernel to pick; report the real one so tests and
    // the startup log name a connectable endpoint.
    sockaddr_storage bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      if (bound.ss_family == AF_INET) {
        endpoint_.port =
            ntohs(reinterpret_cast<const sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        endpoint_.port =
            ntohs(reinterpret_cast<const sockaddr_in6*>(&bound)->sin6_port);
      }
    }
  }
}

std::uint64_t SocketServer::connections_accepted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accepted_;
}

void SocketServer::reap_finished_connections() {
  // A finished reader leaves fd == -1 as its very last locked action, so a
  // connection observed with fd == -1 has nothing left to run; joining its
  // reader is (nearly) instant and keeps connections_ bounded by the number
  // of *live* clients instead of the daemon's lifetime total.
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->fd == -1) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& connection : finished) {
    if (connection->reader.joinable()) connection->reader.join();
  }
}

void SocketServer::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_fds_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Transient resource exhaustion must not retire the accept loop —
        // a daemon that silently stops accepting looks healthy while every
        // new client hangs. Count it (the stats endpoint surfaces fd
        // exhaustion before clients notice), back off briefly and retry.
        accept_failures_.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr, "bbs SocketServer: accept: %s (retrying)\n",
                     std::strerror(errno));
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      break;  // listener closed (stop) or unrecoverable
    }
    // SO_SNDTIMEO bounds each blocking send in the writer thread — solver
    // workers never touch this socket, so the timeout is purely a
    // writer-thread concern (the outbox write deadline is what protects
    // the workers).
    const timeval send_timeout{10, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                 sizeof send_timeout);
    if (endpoint_.kind == Endpoint::Kind::kTcp) {
      // Response lines are small and latency-sensitive; never Nagle them.
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    }
    if (options_.sndbuf_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                   sizeof options_.sndbuf_bytes);
    }
    reap_finished_connections();
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) {
      ::close(fd);
      break;
    }
    auto connection = std::make_unique<Connection>(options_.outbox_capacity);
    Connection* raw = connection.get();
    raw->fd = fd;
    ++accepted_;
    connections_.push_back(std::move(connection));
    // Both threads start under the lock so stop() never observes a
    // half-wired connection.
    raw->writer = std::thread([this, raw] { writer_loop(raw); });
    raw->reader = std::thread([this, raw] { handle_connection(raw); });
  }
}

void SocketServer::writer_loop(Connection* connection) {
  // Exits when the reader closes the outbox after the session finished —
  // by then every response line has been enqueued (or dropped).
  while (std::optional<std::string> line = connection->outbox.pop()) {
    if (!connection->writable.load(std::memory_order_acquire)) continue;
    {
      // outbox.stall_ms failpoint: a deliberately slow writer lets chaos
      // tests fill the outbox and exercise the write-deadline path
      // without a real client that stops reading.
      FaultInjector& faults = FaultInjector::instance();
      if (faults.enabled()) {
        if (const int stall = faults.outbox_stall_ms(); stall > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(stall));
        }
      }
    }
    if (!write_all(connection->fd, *line)) {
      // First failed write: the client is gone or stopped reading past
      // SO_SNDTIMEO. Later lines would interleave with the torn one, so
      // the connection goes dark now — shutdown both ways makes the
      // client observe EOF promptly instead of indefinite silence.
      connection->writable.exchange(false, std::memory_order_acq_rel);
      ::shutdown(connection->fd, SHUT_RDWR);
    }
  }
}

void SocketServer::disconnect_slow_client(Connection* connection) {
  // Runs on the Dispatcher worker whose completion waited out the write
  // deadline. Only the first caller disconnects and counts.
  if (connection->writable.exchange(false, std::memory_order_acq_rel)) {
    slow_client_disconnects_.fetch_add(1, std::memory_order_relaxed);
    // Nobody is reading this connection's responses anymore, so its
    // queued requests are pure waste: cancel them. Queued tasks are shed
    // without solving, a solve in flight stops within one IPM iteration,
    // and every completion still fires — the session's finish() below
    // terminates normally. (The pointer is published before the first
    // line is read and cleared after finish(), and this path only runs
    // from a completion of a line the session consumed in between.)
    if (JsonlSession* session =
            connection->session.load(std::memory_order_acquire)) {
      session->cancel_pending();
    }
    // Wakes the writer blocked in send() and EOFs the client's read side;
    // the reader sees EOF on its next read() and winds the session down.
    // The fd stays open (the reader owns its lifetime), so this shutdown
    // can never race a close.
    ::shutdown(connection->fd, SHUT_RDWR);
  }
}

void SocketServer::augment_stats(ServiceStats& stats) const {
  stats.accept_failures = accept_failures_.load(std::memory_order_relaxed);
  stats.slow_client_disconnects =
      slow_client_disconnects_.load(std::memory_order_relaxed);
  stats.quota_rejections = quota_rejections_.load(std::memory_order_relaxed);
  stats.overload_rejections =
      overload_rejections_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  stats.connections_accepted = accepted_;
  for (const auto& connection : connections_) {
    if (connection->fd != -1) {
      stats.connection_outbox_depths.push_back(connection->outbox.size());
    }
  }
}

void SocketServer::handle_connection(Connection* connection) {
  const int fd = connection->fd;
  SessionOptions session_options;
  session_options.max_in_flight = options_.max_in_flight;
  session_options.requests_per_second = options_.requests_per_second;
  session_options.runtime_config = options_.runtime_config;
  session_options.telemetry = options_.telemetry;
  session_options.structure_cache = options_.structure_cache;
  session_options.trace_ring = options_.trace_ring;
  session_options.trace_log = options_.trace_log;
  session_options.on_quota_rejection = [this] {
    quota_rejections_.fetch_add(1, std::memory_order_relaxed);
  };
  session_options.on_overload_rejection = [this] {
    overload_rejections_.fetch_add(1, std::memory_order_relaxed);
  };
  session_options.on_config_change = [](const std::string& description) {
    std::fprintf(stderr, "bbs SocketServer: set_config applied: %s\n",
                 description.c_str());
  };
  session_options.stats_hook = [this](ServiceStats& stats) {
    augment_stats(stats);
  };
  // Completions (on Dispatcher worker threads) enqueue into the bounded
  // outbox; the writer thread performs the blocking send. A full outbox
  // delays the worker at most write_deadline once — then the client is
  // disconnected and every later line drops immediately.
  JsonlSession session(
      dispatcher_,
      [this, connection](const std::string& line) {
        if (!connection->writable.load(std::memory_order_acquire)) return;
        std::chrono::milliseconds deadline = options_.write_deadline;
        if (options_.runtime_config) {
          deadline = std::chrono::milliseconds(
              options_.runtime_config->write_deadline_ms.load(
                  std::memory_order_relaxed));
        }
        switch (connection->outbox.push_wait_for(line + "\n", deadline)) {
          case PushResult::kPushed:
          case PushResult::kClosed:
            return;
          case PushResult::kTimeout:
            disconnect_slow_client(connection);
            return;
        }
      },
      std::move(session_options));
  connection->session.store(&session, std::memory_order_release);

  // Read-and-split loop. stop() (or a slow-client disconnect) shuts down
  // the read side, which surfaces here as EOF; whatever was already
  // submitted still drains through finish() below, so a shutdown
  // mid-stream answers every line it consumed.
  std::string carry;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // EOF: client finished or stop() intervened
    carry.append(buf, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = carry.find('\n', start); nl != std::string::npos;
         nl = carry.find('\n', start)) {
      session.submit_line(carry.substr(start, nl - start));
      start = nl + 1;
    }
    carry.erase(0, start);
  }
  if (!carry.empty()) session.submit_line(carry);  // unterminated last line
  session.finish();
  connection->session.store(nullptr, std::memory_order_release);
  // finish() returned: every completion has been delivered, so no thread
  // will touch the outbox or fd again except the writer we now retire.
  connection->outbox.close();
  if (connection->writer.joinable()) connection->writer.join();

  std::lock_guard<std::mutex> lock(mutex_);
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  connection->fd = -1;
}

void SocketServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Wake and retire the accept loop first so no new connection threads
  // appear while we iterate.
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], "x", 1);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& connection : connections_) {
      // EOF the reader; the handler drains and closes the fd itself (fd
      // lifetime is owned by the reader thread — see handle_connection).
      if (connection->fd != -1) ::shutdown(connection->fd, SHUT_RD);
    }
  }
  for (auto& connection : connections_) {
    // The reader joins the writer before retiring, so one join suffices.
    if (connection->reader.joinable()) connection->reader.join();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  wake_fds_[0] = wake_fds_[1] = -1;
  if (endpoint_.kind == Endpoint::Kind::kUnix) {
    ::unlink(endpoint_.path.c_str());
  }
}

}  // namespace bbs::service
