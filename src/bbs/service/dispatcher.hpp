// Sharded execution core of the service daemon.
//
// An api::Engine is deliberately single-threaded (it matches the underlying
// warm sessions), so the daemon scales by running N of them: the Dispatcher
// owns N worker threads, each with a private Engine, and routes every
// request by *structure affinity* — the request's pool key
// (api::request_structure_key) hashes to a fixed worker, so all requests of
// one problem structure land on the worker whose session pool already holds
// that structure. The program build and the one-time symbolic KKT
// factorisation of a structure are thereby amortised across the daemon's
// whole lifetime and across every client, not just within one batch
// (ServiceStats reports symbolic_factorisations == number of distinct live
// structures, regardless of how many requests flowed through).
//
// Each worker pulls from its own bounded queue; submit() blocks while the
// routed worker's queue is full, propagating backpressure to the
// connection that produced the request. An idle worker steals one task at
// a time from the deepest peer queue (unless work_stealing is off), so a
// stream dominated by one structure key keeps every worker busy at the
// price of a pool miss per steal. Completions run on the worker thread
// that executed the request and must not throw.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "bbs/api/engine.hpp"

namespace bbs::telemetry {
class ServiceTelemetry;
class Trace;
}  // namespace bbs::telemetry

namespace bbs::service {

struct DispatcherOptions {
  /// Worker threads (one api::Engine each). 0 picks the hardware
  /// concurrency.
  std::size_t workers = 1;
  /// Bounded request-queue capacity *per worker*; submit() blocks while the
  /// routed worker's queue holds this many requests (backpressure).
  std::size_t queue_capacity = 64;
  /// A worker whose own queue is empty lifts one task off the *deepest*
  /// peer queue instead of idling, so a stream dominated by one structure
  /// key no longer pins all work to one worker. Structure affinity stays
  /// the routing default — a steal is just a session-pool miss on the
  /// thief's engine. Disable to make per-worker counters exact functions
  /// of route() (the affinity-invariant tests do).
  bool work_stealing = true;
  /// How long an idle worker waits on its own queue between steal scans.
  std::chrono::milliseconds steal_poll_interval{20};
  /// Per-worker engine options (session-pool bound etc.). When
  /// engine.structure_cache is set, the constructor pre-warms each worker's
  /// pool from the cache (each entry goes to its structure-affine worker)
  /// before any worker thread starts.
  api::EngineOptions engine;
  /// Optional service telemetry (not owned; must outlive the dispatcher).
  /// Workers record queue/solve latency histograms and per-structure
  /// statistics into it after every completed task.
  telemetry::ServiceTelemetry* telemetry = nullptr;
};

/// Snapshot of one worker: its engine's cumulative counters plus the live
/// queue state. Taken after the worker's most recently *completed* request —
/// a request still executing is not yet counted.
struct WorkerStats {
  std::size_t worker = 0;
  api::EngineStats engine;
  std::size_t queue_depth = 0;
  std::size_t pooled_sessions = 0;
  /// Tasks this worker executed that were routed to a peer (steals).
  std::uint64_t stolen = 0;
  /// Tasks whose deadline expired while still queued: answered with a
  /// `deadline_exceeded` error *without* touching the engine (the
  /// engine's `solves` counter does not move for a shed task).
  std::uint64_t deadline_shed = 0;
  /// Tasks that started solving but hit their deadline mid-solve (the
  /// IPM terminated cooperatively within one iteration).
  std::uint64_t timed_out_mid_solve = 0;
  /// Tasks abandoned through their cancellation token — either shed
  /// before solving or interrupted mid-solve.
  std::uint64_t cancelled = 0;
};

/// Daemon-wide snapshot: per-worker stats plus the aggregates the
/// {"kind":"stats"} control request reports. The transport fields below
/// the marker are owned by the front end (SocketServer / the stdio driver)
/// and filled through the JsonlSession stats hook — Dispatcher::stats()
/// leaves them zero.
struct ServiceStats {
  std::vector<WorkerStats> workers;
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t infeasible = 0;
  std::uint64_t errors = 0;
  /// Requests served from an already warm pooled session (pool hits).
  std::uint64_t warm_hits = 0;
  std::uint64_t symbolic_factorisations = 0;
  /// Sum of the per-worker engines' recovered_solves — solves rescued by
  /// the IPM recovery ladder fleet-wide (the production recovery rate).
  std::uint64_t recovered_solves = 0;
  /// Sessions reconstructed at startup from the persistent structure cache
  /// (sum of the per-worker engines' prewarmed_sessions). A warm restart
  /// serves these structures with symbolic_factorisations == 0.
  std::uint64_t prewarmed_sessions = 0;
  std::size_t queue_depth = 0;
  /// Total cross-worker steals (sum of WorkerStats::stolen).
  std::uint64_t stolen = 0;
  /// Sum of WorkerStats::deadline_shed — expired in the queue, never
  /// reached an engine.
  std::uint64_t deadline_shed = 0;
  /// Sum of WorkerStats::timed_out_mid_solve.
  std::uint64_t timed_out_mid_solve = 0;
  /// Sum of WorkerStats::cancelled.
  std::uint64_t cancelled = 0;

  // --- transport-owned (see JsonlSession stats hook) ---
  std::uint64_t connections_accepted = 0;
  /// Transient accept() failures (EMFILE/ENFILE/ENOBUFS/ENOMEM) — fd
  /// exhaustion shows up here before clients notice hangs.
  std::uint64_t accept_failures = 0;
  /// Connections disconnected because their outbox stayed full past the
  /// write deadline (clients that stopped reading).
  std::uint64_t slow_client_disconnects = 0;
  /// Request lines answered with an over-quota error instead of queued.
  std::uint64_t quota_rejections = 0;
  /// Request lines rejected with a retryable `overloaded` error because
  /// the routed worker's queue was above the configured high-water mark.
  std::uint64_t overload_rejections = 0;
  /// Outbox depth of each currently live connection.
  std::vector<std::size_t> connection_outbox_depths;
};

class Dispatcher {
 public:
  /// Runs on the worker thread that executed the request; must not throw
  /// (exceptions are swallowed to keep the worker alive).
  using Completion = std::function<void(api::Response)>;

  explicit Dispatcher(DispatcherOptions options = {});
  /// stop(/*drain=*/true): a destroyed dispatcher has completed every
  /// request it accepted.
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Routes the request to its structure-affine worker and enqueues it,
  /// blocking while that worker's queue is full. Returns false — without
  /// invoking `done` — once the dispatcher is stopping.
  ///
  /// A request with options.deadline_ms > 0 is stamped with an absolute
  /// deadline *at enqueue time*: the budget covers queue wait plus solve.
  /// A task whose deadline passes while still queued is shed — answered
  /// with a `deadline_exceeded` error without invoking the engine
  /// (ServiceStats::deadline_shed); one that expires mid-solve terminates
  /// within one IPM iteration (ServiceStats::timed_out_mid_solve). The
  /// optional `cancel` token (typically per-connection, flipped when the
  /// client goes away) sheds or interrupts the task the same way.
  /// The optional `trace` (a traced request's telemetry::Trace) rides the
  /// task through the pipeline: submit stamps the enqueue hop (routed
  /// worker + queue depth), the executing worker stamps dequeue/steal/shed
  /// and the solve span, and — when the request opted into trace_ipm — the
  /// engine emits per-IPM-iteration events into it. The completion's
  /// response carries the trace id in diagnostics.trace_id.
  bool submit(api::Request request, Completion done,
              std::shared_ptr<solver::CancelToken> cancel = nullptr,
              std::shared_ptr<telemetry::Trace> trace = nullptr);

  /// The worker index `request` routes to (stable for the dispatcher's
  /// lifetime: a pure hash of the request's structure key).
  std::size_t route(const api::Request& request) const;

  /// Live queue depth of one worker (for the overload high-water check:
  /// depth(route(request)) tells a session how deep the backlog it is
  /// about to join already is).
  std::size_t queue_depth(std::size_t worker) const;

  /// Stops accepting work and joins all workers. With `drain` every
  /// already queued request still executes and completes; without it the
  /// backlog is not executed — each dropped request's completion instead
  /// receives a "service is shutting down" error response, so callers
  /// counting completions (the JSONL reorder buffer) always hear back
  /// about every accepted submit. Idempotent.
  void stop(bool drain = true);

  ServiceStats stats() const;
  std::size_t num_workers() const { return workers_.size(); }
  const DispatcherOptions& options() const { return options_; }

 private:
  struct Worker;

  void worker_loop(Worker& worker);

  DispatcherOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  bool stopped_ = false;  ///< guarded by stop_mutex_
  std::mutex stop_mutex_;
};

}  // namespace bbs::service
