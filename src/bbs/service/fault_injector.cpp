#include "bbs/service/fault_injector.hpp"

#include <cstdlib>

#include "bbs/common/assert.hpp"

namespace bbs::service {

namespace {

std::string trimmed(const std::string& text) {
  const std::size_t first = text.find_first_not_of(" \t");
  if (first == std::string::npos) return {};
  const std::size_t last = text.find_last_not_of(" \t");
  return text.substr(first, last - first + 1);
}

int parse_int(const std::string& name, const std::string& text) {
  try {
    std::size_t consumed = 0;
    const int value = std::stoi(text, &consumed);
    if (consumed != text.size()) {
      throw ModelError("failpoint " + name + ": trailing characters in '" +
                       text + "'");
    }
    return value;
  } catch (const ModelError&) {
    throw;
  } catch (const std::exception&) {
    throw ModelError("failpoint " + name + ": '" + text +
                     "' is not an integer");
  }
}

}  // namespace

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::configure(const std::string& spec) {
  std::size_t pos = 0;
  bool armed = false;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string pair = spec.substr(pos, end - pos);
    pos = end + 1;
    if (pair.find_first_not_of(" \t") == std::string::npos) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      throw ModelError("failpoint spec '" + pair + "': expected name=value");
    }
    const std::string name = trimmed(pair.substr(0, eq));
    const std::string value = trimmed(pair.substr(eq + 1));
    if (name == "worker.delay_ms") {
      worker_delay_ms_.store(parse_int(name, value),
                             std::memory_order_relaxed);
    } else if (name == "ipm.fail_at") {
      ipm_fail_at_.store(parse_int(name, value), std::memory_order_relaxed);
    } else if (name == "ipm.fail_once") {
      ipm_fail_once_.store(parse_int(name, value), std::memory_order_relaxed);
    } else if (name == "outbox.stall_ms") {
      outbox_stall_ms_.store(parse_int(name, value),
                             std::memory_order_relaxed);
    } else {
      throw ModelError("unknown failpoint '" + name + "'");
    }
    armed = true;
  }
  if (armed) enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::configure_from_env() {
  const char* spec = std::getenv("BBS_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return;
  configure(spec);
}

void FaultInjector::clear() {
  enabled_.store(false, std::memory_order_relaxed);
  worker_delay_ms_.store(0, std::memory_order_relaxed);
  ipm_fail_at_.store(-1, std::memory_order_relaxed);
  ipm_fail_once_.store(-1, std::memory_order_relaxed);
  outbox_stall_ms_.store(0, std::memory_order_relaxed);
}

std::string FaultInjector::describe() const {
  if (!enabled()) return {};
  std::string out;
  const auto append = [&out](const std::string& pair) {
    if (!out.empty()) out += ';';
    out += pair;
  };
  if (const int v = worker_delay_ms(); v > 0) {
    append("worker.delay_ms=" + std::to_string(v));
  }
  if (const int v = ipm_fail_at(); v >= 0) {
    append("ipm.fail_at=" + std::to_string(v));
  }
  if (const int v = ipm_fail_once(); v >= 0) {
    append("ipm.fail_once=" + std::to_string(v));
  }
  if (const int v = outbox_stall_ms(); v > 0) {
    append("outbox.stall_ms=" + std::to_string(v));
  }
  return out;
}

}  // namespace bbs::service
