// Unix-domain-socket front end of the service daemon.
//
// Listens on a filesystem socket path and serves each accepted connection
// on its own thread as an independent JsonlSession: requests from all
// connections funnel into one shared Dispatcher (whose warm session pools
// they therefore share, per structure affinity), while response ordering is
// per connection. Backpressure is end-to-end: a connection whose requests
// target a saturated worker stops being read, which fills the client's
// socket buffer and eventually blocks the client's writes.
//
// Shutdown (stop()) is graceful: the listener closes, every open
// connection's read side is shut down (the client sees the daemon stop
// consuming), in-flight and queued requests still complete, and their
// responses are written before the connections close.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bbs/service/dispatcher.hpp"

namespace bbs::service {

class SocketServer {
 public:
  /// Binds and listens on `socket_path` (an existing socket file at that
  /// path is removed first — daemons own their socket path), then starts
  /// the accept loop on a background thread. Throws ModelError when the
  /// path is too long for sockaddr_un or any socket call fails.
  SocketServer(Dispatcher& dispatcher, std::string socket_path);
  /// Implies stop().
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Graceful shutdown: stop accepting, EOF every connection's read side,
  /// drain what was already read, join all threads, unlink the socket
  /// path. Idempotent. The shared Dispatcher is left running (the caller
  /// owns its lifecycle).
  void stop();

  const std::string& socket_path() const { return socket_path_; }
  std::uint64_t connections_accepted() const;

 private:
  struct Connection {
    int fd = -1;  ///< -1 once the handler thread has closed it
    std::thread thread;
  };

  void accept_loop();
  void handle_connection(Connection* connection);

  Dispatcher& dispatcher_;
  std::string socket_path_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe that interrupts the accept poll
  std::thread accept_thread_;

  mutable std::mutex mutex_;  ///< guards connections_ and accepted_
  std::vector<std::unique_ptr<Connection>> connections_;
  std::uint64_t accepted_ = 0;
  bool stopped_ = false;
};

}  // namespace bbs::service
