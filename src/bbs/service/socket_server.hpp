// Socket front end of the service daemon — AF_UNIX or TCP.
//
// Listens on a parsed Endpoint (unix:/path or tcp://host:port) and serves
// each accepted connection as an independent JsonlSession: requests from
// all connections funnel into one shared Dispatcher (whose warm session
// pools they therefore share, per structure affinity), while response
// ordering is per connection.
//
// Solve and I/O are decoupled per connection: completions enqueue finished
// response lines into a bounded outbox and a dedicated *writer thread*
// performs the blocking send, so a client that stops reading can never
// park a Dispatcher worker. When the outbox stays full past the write
// deadline the connection is disconnected (counted in
// slow_client_disconnects) instead of stalling its shard; SO_SNDTIMEO is a
// writer-thread concern only. On the first failed write the socket is shut
// down both ways so the client observes EOF promptly rather than a torn
// line followed by silence.
//
// Backpressure is still end-to-end on the read side: a connection whose
// requests target a saturated worker stops being read, which fills the
// client's socket buffer and eventually blocks the client's writes.
//
// Shutdown (stop()) is graceful: the listener closes, every open
// connection's read side is shut down (the client sees the daemon stop
// consuming), in-flight and queued requests still complete, and their
// responses are written before the connections close.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bbs/service/bounded_queue.hpp"
#include "bbs/service/dispatcher.hpp"
#include "bbs/service/endpoint.hpp"
#include "bbs/service/jsonl_stream.hpp"

namespace bbs::service {

struct SocketServerOptions {
  /// Bounded per-connection outbox (finished response lines awaiting the
  /// writer thread).
  std::size_t outbox_capacity = 256;
  /// How long a completion may wait on a full outbox before the connection
  /// is declared a slow client and disconnected. This bounds the time any
  /// Dispatcher worker can spend blocked on one connection's I/O.
  std::chrono::milliseconds write_deadline{2000};
  /// Per-connection quota caps (see SessionOptions); 0 = unlimited.
  std::size_t max_in_flight = 0;
  double requests_per_second = 0.0;
  /// When > 0, shrinks SO_SNDBUF on accepted sockets. Production leaves
  /// the kernel default; tests use a tiny buffer to reproduce slow-client
  /// backpressure without megabytes of traffic.
  int sndbuf_bytes = 0;
  /// Hot-reloadable limits shared across every connection (see
  /// SessionOptions::runtime_config). When set it overrides the static
  /// quota fields above, arms overload shedding and the default request
  /// deadline, and makes the write deadline hot-reloadable; a
  /// {"kind":"set_config"} line on any connection reconfigures the whole
  /// daemon. Config changes are logged to stderr.
  std::shared_ptr<RuntimeConfig> runtime_config;
  /// Optional service telemetry and structure cache (not owned; must
  /// outlive the server) — handed to every connection's JsonlSession so
  /// stats/metrics lines report them and write-stage latency is recorded.
  telemetry::ServiceTelemetry* telemetry = nullptr;
  telemetry::StructureCache* structure_cache = nullptr;
  /// Optional trace ring + slow/error trace log (not owned; must outlive
  /// the server) — handed to every connection's JsonlSession so traced
  /// requests are recorded and {"kind":"trace"} lines can be served.
  telemetry::TraceRing* trace_ring = nullptr;
  telemetry::TraceLog* trace_log = nullptr;
};

class SocketServer {
 public:
  /// Binds and listens on `endpoint`, then starts the accept loop on a
  /// background thread. For unix endpoints a *live* listener at the path is
  /// a startup error (ModelError) — only genuinely stale socket files are
  /// cleaned up, and a non-socket file at the path is never deleted. For
  /// tcp endpoints port 0 binds an ephemeral port; endpoint() reports the
  /// actual one. Throws ModelError when any socket call fails.
  SocketServer(Dispatcher& dispatcher, Endpoint endpoint,
               SocketServerOptions options = {});
  /// Back-compat convenience: an AF_UNIX server on `socket_path`.
  SocketServer(Dispatcher& dispatcher, std::string socket_path);
  /// Implies stop().
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Graceful shutdown: stop accepting, EOF every connection's read side,
  /// drain what was already read, join all threads, unlink a unix socket
  /// path. Idempotent. The shared Dispatcher is left running (the caller
  /// owns its lifecycle).
  void stop();

  /// The bound endpoint (tcp port resolved when 0 was requested).
  const Endpoint& endpoint() const { return endpoint_; }
  /// Unix socket path ("" for tcp endpoints).
  const std::string& socket_path() const { return endpoint_.path; }
  std::uint64_t connections_accepted() const;
  std::uint64_t accept_failures() const { return accept_failures_.load(); }
  std::uint64_t slow_client_disconnects() const {
    return slow_client_disconnects_.load();
  }
  std::uint64_t quota_rejections() const { return quota_rejections_.load(); }
  std::uint64_t overload_rejections() const {
    return overload_rejections_.load();
  }

 private:
  struct Connection {
    explicit Connection(std::size_t outbox_capacity)
        : outbox(outbox_capacity) {}

    int fd = -1;  ///< -1 once the reader thread has closed it
    /// Cleared on the first write failure or slow-client disconnect;
    /// later response lines are discarded instead of written.
    std::atomic<bool> writable{true};
    /// The live session of this connection (null outside handle_connection's
    /// serving window); disconnect_slow_client cancels its pending work
    /// through it, so a dead client's backlog is shed instead of solved.
    std::atomic<JsonlSession*> session{nullptr};
    BoundedQueue<std::string> outbox;
    std::thread reader;
    std::thread writer;
  };

  void listen_unix();
  void listen_tcp();
  void accept_loop();
  void handle_connection(Connection* connection);
  void writer_loop(Connection* connection);
  /// Disconnects a client whose outbox stayed full past the write
  /// deadline; runs on the worker thread that hit the deadline.
  void disconnect_slow_client(Connection* connection);
  /// Folds the transport-owned counters into a stats snapshot (the
  /// JsonlSession stats hook).
  void augment_stats(ServiceStats& stats) const;
  /// Removes and joins connections whose reader has finished, so a
  /// long-lived daemon does not accumulate one retired struct per client.
  void reap_finished_connections();

  Dispatcher& dispatcher_;
  Endpoint endpoint_;
  SocketServerOptions options_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe that interrupts the accept poll
  std::thread accept_thread_;

  std::atomic<std::uint64_t> accept_failures_{0};
  std::atomic<std::uint64_t> slow_client_disconnects_{0};
  std::atomic<std::uint64_t> quota_rejections_{0};
  std::atomic<std::uint64_t> overload_rejections_{0};

  mutable std::mutex mutex_;  ///< guards connections_ and accepted_
  std::vector<std::unique_ptr<Connection>> connections_;
  std::uint64_t accepted_ = 0;
  bool stopped_ = false;
};

}  // namespace bbs::service
